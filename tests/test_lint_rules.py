"""Fixture-based unit tests for the LSVD invariant checker.

Each rule family gets: a known-bad snippet that must produce the
expected diagnostic, a suppressed variant, and an allowlisted variant.
Plus: JSON reporter schema, suppression scoping regression, config
loading from pyproject, and the format-string parser.
"""

import json
import textwrap
from dataclasses import replace

from repro.lint import ALL_RULES, Diagnostic, LintConfig, LintRunner, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.config import discover_config
from repro.lint.framework import parse_suppressions
from repro.lint.reporters import json_document
from repro.lint.rules.structs import format_field_count


def lint_src(relkey, source, config=None):
    """Run every rule over ``source`` as if it lived at repro/<relkey>."""
    runner = LintRunner([cls() for cls in ALL_RULES], config or LintConfig())
    return runner.check_source(f"repro/{relkey}", textwrap.dedent(source))


def codes(diagnostics):
    return [d.code for d in diagnostics]


# ---------------------------------------------------------------------------
# LSVD001 immutability
# ---------------------------------------------------------------------------


class TestImmutability:
    BAD = """
        def sneaky(store, data):
            store.put("vol.00000042", data)
    """

    def test_flags_direct_put_outside_allowlist(self):
        diags = lint_src("analysis/report.py", self.BAD)
        assert codes(diags) == ["LSVD001"]
        assert "store.put()" in diags[0].message
        assert diags[0].line == 3

    def test_allowlisted_module_is_exempt(self):
        # the discarded handle still (rightly) trips LSVD010; only the
        # layering rule is exempt here
        assert "LSVD001" not in codes(lint_src("core/block_store.py", self.BAD))

    def test_suppression_comment_silences(self):
        src = """
            def sneaky(store, data):
                store.put("k", data)  # lint: disable=LSVD001 -- reviewed
        """
        assert lint_src("analysis/report.py", src) == []

    def test_delete_and_copy_also_flagged(self):
        src = """
            def cleanup(backend):
                backend.delete("k")
                backend.copy("a", "b")
        """
        assert codes(lint_src("workloads/fio.py", src)) == ["LSVD001", "LSVD001"]

    def test_queue_put_is_not_a_store(self):
        src = """
            def enqueue(q, item):
                q.put(item)
                self.results.put(item)
        """
        assert lint_src("analysis/report.py", src) == []

    def test_reads_are_unrestricted(self):
        src = """
            def peek(store):
                return store.get("k"), store.list("v."), store.get_range("k", 0, 10)
        """
        assert lint_src("analysis/report.py", src) == []

    def test_pyproject_extension_adds_allowlist_entry(self):
        config = replace(
            LintConfig(), immutability_allow=LintConfig().immutability_allow + ("analysis/report.py",)
        )
        assert lint_src("analysis/report.py", self.BAD, config) == []


# ---------------------------------------------------------------------------
# LSVD002 sequence hygiene
# ---------------------------------------------------------------------------


class TestSequenceHygiene:
    def test_flags_seq_arithmetic_outside_log_layer(self):
        src = """
            def bump(self):
                self.next_seq += 1
        """
        diags = lint_src("core/gc.py", src)
        assert codes(diags) == ["LSVD002"]
        assert "next_seq" in diags[0].message

    def test_binop_on_seq_flagged(self):
        assert codes(lint_src("tools/x.py", "y = seq + 1\n")) == ["LSVD002"]

    def test_log_layer_owns_the_arithmetic(self):
        src = "def take(self):\n    self.next_seq += 1\n"
        for module in ("core/log.py", "core/block_store.py", "core/write_cache.py"):
            assert lint_src(module, src) == []

    def test_comparisons_are_fine(self):
        src = """
            def check(seq, other_seq):
                return seq >= other_seq and seq != 0
        """
        assert lint_src("core/gc.py", src) == []

    def test_sequential_bandwidth_names_do_not_match(self):
        src = """
            def model(seq_write_bw, seq_run_mean):
                return seq_write_bw * 2 + seq_run_mean - 1
        """
        assert lint_src("devices/ssd.py", src) == []


# ---------------------------------------------------------------------------
# LSVD003 determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_flagged_in_core(self):
        src = """
            import time
            def stamp():
                return time.time()
        """
        diags = lint_src("core/volume.py", src)
        assert codes(diags) == ["LSVD003"]
        assert "time.time" in diags[0].message

    def test_aliased_import_still_caught(self):
        src = """
            from time import monotonic as mono
            def stamp():
                return mono()
        """
        assert codes(lint_src("sim/engine.py", src)) == ["LSVD003"]

    def test_unseeded_random_flagged_seeded_ok(self):
        src = """
            import random
            bad = random.Random()
            good = random.Random(42)
        """
        diags = lint_src("workloads/fio.py", src)
        assert codes(diags) == ["LSVD003"]
        assert diags[0].line == 3

    def test_module_level_random_flagged(self):
        src = """
            import random
            def pick():
                return random.randrange(10)
        """
        assert codes(lint_src("gcsim/simulator.py", src)) == ["LSVD003"]

    def test_outside_deterministic_dirs_unrestricted(self):
        src = """
            import time, random
            def bench():
                return time.time() + random.random()
        """
        assert lint_src("analysis/report.py", src) == []

    def test_datetime_now_flagged(self):
        src = """
            from datetime import datetime
            def stamp():
                return datetime.now()
        """
        assert codes(lint_src("crash/consistency.py", src)) == ["LSVD003"]


# ---------------------------------------------------------------------------
# LSVD004 recovery error handling
# ---------------------------------------------------------------------------


class TestRecoveryHandlers:
    def test_swallowing_broad_except_flagged(self):
        src = """
            def probe(self, seq):
                try:
                    return self.header_of(seq).kind
                except Exception:
                    return -1
        """
        diags = lint_src("core/block_store.py", src)
        assert codes(diags) == ["LSVD004"]

    def test_bare_except_flagged(self):
        src = """
            def probe():
                try:
                    risky()
                except:
                    pass
        """
        assert codes(lint_src("crash/consistency.py", src)) == ["LSVD004"]

    def test_reraise_is_fine(self):
        src = """
            def probe():
                try:
                    risky()
                except Exception:
                    cleanup()
                    raise
        """
        assert lint_src("core/volume.py", src) == []

    def test_recording_the_error_is_fine(self):
        src = """
            def probe(self):
                try:
                    risky()
                except Exception as exc:
                    self.errors.append(str(exc))
        """
        assert lint_src("core/scrub.py", src) == []

    def test_narrow_except_is_fine(self):
        src = """
            def probe():
                try:
                    risky()
                except (ValueError, KeyError):
                    return None
        """
        assert lint_src("core/block_store.py", src) == []

    def test_outside_recovery_dirs_unrestricted(self):
        src = """
            def probe():
                try:
                    risky()
                except Exception:
                    return None
        """
        assert lint_src("analysis/report.py", src) == []


# ---------------------------------------------------------------------------
# LSVD005 unit confusion
# ---------------------------------------------------------------------------


class TestUnitConfusion:
    def test_mixed_unannotated_params_flagged(self):
        src = """
            def translate(lba, offset):
                return lba, offset
        """
        diags = lint_src("core/extent_map.py", src)
        assert codes(diags) == ["LSVD005", "LSVD005"]

    def test_annotated_params_ok(self):
        src = """
            def translate(lba: int, offset: int) -> int:
                return lba
        """
        assert lint_src("core/extent_map.py", src) == []

    def test_single_family_needs_no_annotations(self):
        src = """
            def only_lbas(lba, other_lba):
                return lba, other_lba
        """
        assert lint_src("core/extent_map.py", src) == []

    def test_direct_lba_byte_arithmetic_flagged(self):
        src = "pos = lba + byte_off\n"
        diags = lint_src("core/volume.py", src)
        assert codes(diags) == ["LSVD005"]

    def test_converted_arithmetic_ok(self):
        src = "pos = lba * BLOCK + byte_off\n"
        assert lint_src("core/volume.py", src) == []


# ---------------------------------------------------------------------------
# LSVD006 struct/header consistency
# ---------------------------------------------------------------------------


class TestStructConsistency:
    def test_pack_arity_mismatch_flagged(self):
        src = """
            import struct
            _HDR = struct.Struct("<4sHHQ")
            blob = _HDR.pack(b"MAGC", 1, 2)
        """
        diags = lint_src("core/x.py", src)
        assert codes(diags) == ["LSVD006"]
        assert "packs 3 value(s)" in diags[0].message

    def test_pack_correct_arity_ok(self):
        src = """
            import struct
            _HDR = struct.Struct("<4sHHQ")
            blob = _HDR.pack(b"MAGC", 1, 2, 3)
        """
        assert lint_src("core/x.py", src) == []

    def test_unpack_target_arity_mismatch_flagged(self):
        src = """
            import struct
            _EXT = struct.Struct("<QIQ")
            lba, length = _EXT.unpack_from(buf, 0)
        """
        assert codes(lint_src("core/x.py", src)) == ["LSVD006"]

    def test_literal_struct_pack_checked(self):
        src = """
            import struct
            blob = struct.pack("<HH", 1)
        """
        assert codes(lint_src("core/x.py", src)) == ["LSVD006"]

    def test_starred_args_skipped(self):
        src = """
            import struct
            _ROW = struct.Struct("<QQ")
            def pack_rows(rows):
                return b"".join(_ROW.pack(*row) for row in rows)
        """
        assert lint_src("core/x.py", src) == []

    def test_dataclass_cross_check(self):
        src = """
            import struct
            from dataclasses import dataclass

            _EXT = struct.Struct("<QIQ")

            @dataclass
            class Extent:
                lba: int
                length: int
        """
        config = replace(
            LintConfig(), struct_dataclass_map={"core/x.py": {"_EXT": "Extent"}}
        )
        diags = lint_src("core/x.py", src, config)
        assert codes(diags) == ["LSVD006"]
        assert "2 field(s)" in diags[0].message and "3" in diags[0].message

    def test_format_field_count(self):
        assert format_field_count("<4sHHQQIII") == 8
        assert format_field_count("<QI") == 2
        assert format_field_count("<4sHHI I") == 5  # whitespace is legal
        assert format_field_count("<8sQ") == 2
        assert format_field_count("4x") == 0  # pad bytes consume no values
        assert format_field_count("<3H") == 3
        assert format_field_count("not a format") is None


# ---------------------------------------------------------------------------
# LSVD007 observability
# ---------------------------------------------------------------------------


class TestObservability:
    BAD_COUNTER = """
        class Cache:
            def __init__(self):
                self.hits = 0

            def lookup(self):
                self.hits += 1
    """

    def test_flags_undeclared_stat_counter_in_core(self):
        diags = lint_src("core/cache.py", self.BAD_COUNTER)
        assert codes(diags) == ["LSVD007"]
        assert "self.hits" in diags[0].message
        assert "metric_field" in diags[0].fixit

    def test_flags_in_runtime_too(self):
        assert codes(lint_src("runtime/dev.py", self.BAD_COUNTER)) == ["LSVD007"]

    def test_other_packages_are_not_instrumented(self):
        assert lint_src("analysis/report.py", self.BAD_COUNTER) == []
        assert lint_src("workloads/fio.py", self.BAD_COUNTER) == []

    def test_metric_field_declaration_exempts_the_increment(self):
        src = """
            from repro.obs import metric_field

            class Cache:
                hits = metric_field("rc.hits")

                def lookup(self):
                    self.hits += 1
        """
        assert lint_src("core/cache.py", src) == []

    def test_gauge_field_declaration_exempts_subtraction(self):
        src = """
            from repro.obs import gauge_field

            class Dev:
                dirty_bytes = gauge_field("dev.dirty_bytes")

                def release(self, n):
                    self.dirty_bytes -= n
        """
        assert lint_src("runtime/dev.py", src) == []

    def test_private_attributes_are_mechanism_not_metrics(self):
        src = """
            class Cache:
                def lookup(self):
                    self._hits += 1
        """
        assert lint_src("core/cache.py", src) == []

    def test_non_stat_names_pass(self):
        src = """
            class Cache:
                def push(self):
                    self.depth += 1
        """
        assert lint_src("core/cache.py", src) == []

    def test_flags_print_in_instrumented_code(self):
        src = """
            def report(stats):
                print("hits:", stats)
        """
        diags = lint_src("core/cache.py", src)
        assert codes(diags) == ["LSVD007"]
        assert "print()" in diags[0].message

    def test_print_is_fine_outside_instrumented_dirs(self):
        src = """
            def report(stats):
                print("hits:", stats)
        """
        assert lint_src("analysis/report.py", src) == []

    def test_suppression_comment_silences(self):
        src = """
            class Batch:
                def add(self, data):
                    self.bytes_in += len(data)  # lint: disable=LSVD007 -- payload accounting
        """
        assert lint_src("core/batch.py", src) == []

    def test_obs_allow_extension_exempts_module(self):
        config = replace(
            LintConfig(), obs_allow=LintConfig().obs_allow + ("core/cache.py",)
        )
        assert lint_src("core/cache.py", self.BAD_COUNTER, config) == []

    def test_pyproject_obs_allow_and_stat_markers(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'obs-allow = ["core/cache.py"]\n'
            'stat-markers = ["frobs"]\n'
        )
        config = LintConfig.from_pyproject(pyproject)
        assert config.module_allowed("repro/core/cache.py", config.obs_allow)
        src = """
            class Dev:
                def tick(self):
                    self.frobs += 1
        """
        assert codes(lint_src("runtime/dev.py", src, config)) == ["LSVD007"]
        assert lint_src("core/cache.py", self.BAD_COUNTER, config) == []


# ---------------------------------------------------------------------------
# suppression semantics
# ---------------------------------------------------------------------------


class TestShardOwnership:
    BAD_MOD = """
        def place(seq, n_shards):
            return (seq + 7) % n_shards
    """
    BAD_NAME = """
        def shard_dir(i):
            return f"shard-{i:02d}"
    """

    def test_flags_modulo_on_shard_count(self):
        diags = lint_src("core/destage.py", self.BAD_MOD)
        assert "LSVD008" in codes(diags)
        shard_diag = next(d for d in diags if d.code == "LSVD008")
        assert "n_shards" in shard_diag.message
        assert "ShardRouter" in shard_diag.fixit

    def test_flags_attribute_shard_count_too(self):
        src = """
            class Router:
                def pick(self, key):
                    return hash(key) % self.num_shards
        """
        assert "LSVD008" in codes(lint_src("runtime/destage.py", src))

    def test_flags_fstring_shard_name_construction(self):
        diags = lint_src("tools/admin.py", self.BAD_NAME)
        assert codes(diags) == ["LSVD008"]
        assert "shard name" in diags[0].message

    def test_flags_format_and_percent_templates(self):
        src = """
            def a(i):
                return "shard-{}".format(i)

            def b(i):
                return "shard-%02d" % i
        """
        assert codes(lint_src("analysis/report.py", src)) == ["LSVD008", "LSVD008"]

    def test_fixed_literals_are_fine(self):
        src = """
            def build(sub):
                p = sub.add_parser("shard-status")
                return p
        """
        assert lint_src("cli.py", src) == []

    def test_shard_package_is_exempt(self):
        # (seq arithmetic still answers to LSVD002 there — only the shard
        # ownership rule stands down inside repro/shard/)
        assert "LSVD008" not in codes(lint_src("shard/router.py", self.BAD_MOD))
        assert lint_src("shard/store.py", self.BAD_NAME) == []

    def test_suppression_comment_silences(self):
        src = """
            def place(seq, n_shards):
                return seq % n_shards  # lint: disable=LSVD002,LSVD008 -- migration tool
        """
        assert lint_src("tools/reshard.py", src) == []

    def test_shard_allow_extends_from_config(self):
        config = replace(LintConfig(), shard_allow=("tools/reshard.py",))
        assert lint_src("tools/reshard.py", self.BAD_NAME, config) == []

    def test_other_modulo_arithmetic_passes(self):
        src = """
            def bucket(key, n_buckets):
                return key % n_buckets
        """
        assert lint_src("core/cache.py", src) == []


# ---------------------------------------------------------------------------
# LSVD009 hot-path hygiene
# ---------------------------------------------------------------------------


class TestHotPath:
    BAD_INSERT = """
        def carve(entries, i, frag):
            entries.insert(i, frag)
    """
    BAD_DEL = """
        def drop(entries, i):
            del entries[i]
    """
    BAD_COPY = """
        def pieces(buf, exts):
            return [bytes(buf[e.offset : e.offset + e.length]) for e in exts]
    """

    def test_flags_list_insert_in_data_plane_module(self):
        diags = lint_src("core/extent_map.py", self.BAD_INSERT)
        assert codes(diags) == ["LSVD009"]
        assert "list.insert" in diags[0].message

    def test_flags_del_subscript(self):
        diags = lint_src("core/volume.py", self.BAD_DEL)
        assert codes(diags) == ["LSVD009"]
        assert "del" in diags[0].message

    def test_flags_per_extent_bytes_copy(self):
        diags = lint_src("core/batch.py", self.BAD_COPY)
        assert codes(diags) == ["LSVD009"]
        assert "bytes" in diags[0].message
        assert "sgio" in diags[0].fixit

    def test_non_hotpath_modules_are_ignored(self):
        # checkpoint/recovery modules may shuffle lists freely
        assert lint_src("core/checkpoint.py", self.BAD_INSERT) == []
        assert lint_src("core/write_cache.py", self.BAD_COPY) == []

    def test_blessed_helper_is_exempt(self):
        src = """
            def _leaf_insert(chunk, lbas, ei, new):
                chunk.insert(ei, new)
                lbas.insert(ei, new.lba)
        """
        assert lint_src("core/extent_map.py", src) == []

    def test_blessing_is_per_function_not_per_name_prefix(self):
        # a different function in the same module is still checked
        src = """
            def _leaf_insert(chunk, ei, new):
                chunk.insert(ei, new)

            def rebalance(chunk, ei, new):
                chunk.insert(ei, new)
        """
        diags = lint_src("core/extent_map.py", src)
        assert codes(diags) == ["LSVD009"]
        assert diags[0].line == 6

    def test_nested_function_shadows_blessing(self):
        # a def nested inside a blessed helper is its own scope: blessing
        # does not leak into it
        src = """
            def _split_chunk(chunks, ci):
                def helper(xs, i):
                    xs.insert(i, None)
                chunks.insert(ci, [])
                return helper
        """
        diags = lint_src("core/extent_map.py", src)
        assert codes(diags) == ["LSVD009"]
        assert diags[0].line == 4

    def test_hotpath_allow_extends_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'hotpath-allow = ["core/batch.py::pieces"]\n'
        )
        config = LintConfig.from_pyproject(pyproject)
        assert lint_src("core/batch.py", self.BAD_COPY, config) == []

    def test_whole_module_exemption(self):
        config = replace(LintConfig(), hotpath_blessed=("core/log.py",))
        assert lint_src("core/log.py", self.BAD_DEL, config) == []

    def test_real_decode_paths_are_allowlisted(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[1]
        config = LintConfig.from_pyproject(repo / "pyproject.toml")
        assert "core/log.py::decode_record" in config.hotpath_blessed
        assert "core/log.py::decode_object" in config.hotpath_blessed

    def test_suppression_comment_silences(self):
        src = """
            def insert_piece(cache, lba, data):
                cache.insert(lba, data)  # lint: disable=LSVD009 -- cache API
        """
        assert lint_src("core/volume.py", src) == []

    def test_bytes_of_name_is_fine(self):
        # the single whole-buffer materialisation is the blessed pattern
        src = """
            def seal(out):
                return bytes(out)
        """
        assert lint_src("core/log.py", src) == []


class TestSuppressions:
    def test_disable_only_silences_named_code_on_that_line(self):
        # one line violating LSVD002 *and* LSVD005: disabling LSVD002
        # must leave the LSVD005 finding intact
        src = "x = (seq + 1) + (lba + byte_off)  # lint: disable=LSVD002\n"
        diags = lint_src("core/x.py", src)
        assert codes(diags) == ["LSVD005"]

    def test_disable_is_line_scoped(self):
        src = """
            y = seq + 1  # lint: disable=LSVD002
            z = seq + 2
        """
        diags = lint_src("core/x.py", src)
        assert codes(diags) == ["LSVD002"]
        assert diags[0].line == 3

    def test_multiple_codes_one_comment(self):
        src = "x = (seq + 1) + (lba + byte_off)  # lint: disable=LSVD002,LSVD005\n"
        assert lint_src("core/x.py", src) == []

    def test_comment_inside_string_is_not_a_suppression(self):
        src = 'msg = "# lint: disable=LSVD002"\ny = seq + 1\n'
        assert codes(lint_src("core/x.py", src)) == ["LSVD002"]

    def test_parse_suppressions_table(self):
        table = parse_suppressions(
            "a = 1  # lint: disable=LSVD001\n"
            "b = 2\n"
            "c = 3  # lint: disable=LSVD002, LSVD003 -- reason\n"
        )
        assert table == {1: {"LSVD001"}, 3: {"LSVD002", "LSVD003"}}


# ---------------------------------------------------------------------------
# reporters & CLI
# ---------------------------------------------------------------------------


class TestReporting:
    def make_diag(self):
        return Diagnostic(
            path="repro/core/x.py",
            line=3,
            col=5,
            code="LSVD001",
            message="direct object-store mutation",
            fixit="route through BlockStore",
        )

    def test_json_document_schema(self):
        doc = json_document([self.make_diag()])
        assert doc["schema_version"] == 1
        assert doc["tool"] == "repro-lint"
        assert doc["summary"] == {
            "total": 1,
            "by_code": {"LSVD001": 1},
            "clean": False,
        }
        (entry,) = doc["diagnostics"]
        assert set(entry) == {
            "path", "line", "col", "code", "message", "fixit", "severity",
        }
        assert entry["severity"] == "error"
        json.dumps(doc)  # must be serialisable

    def test_text_render_format(self):
        line = self.make_diag().render()
        assert line.startswith("repro/core/x.py:3:5: LSVD001 ")
        assert "(fix: " in line

    def test_cli_reports_violation_and_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\n")
        assert lint_main([str(tmp_path), "--no-config"]) == 1
        out = capsys.readouterr().out
        assert "LSVD003" in out and "bad.py:2:" in out

    def test_cli_select_and_ignore(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\ny = seq + 1\n")
        assert lint_main([str(tmp_path), "--no-config", "--select", "LSVD002"]) == 1
        assert "LSVD003" not in capsys.readouterr().out
        assert lint_main([str(tmp_path), "--no-config", "--ignore", "LSVD002,LSVD003"]) == 0

    def test_cli_missing_path_exits_two(self, capsys):
        assert lint_main(["/nonexistent/nowhere"]) == 2

    def test_cli_json_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("y = seq + 1\n")
        assert lint_main([str(tmp_path), "--no-config", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["by_code"] == {"LSVD002": 1}

    def test_syntax_error_reported_not_crash(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        diags = run_lint([bad])
        assert codes(diags) == ["LSVD000"]


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


class TestConfig:
    def test_module_key_anchors_on_package_dir(self):
        assert LintConfig.module_key("src/repro/core/log.py") == "core/log.py"
        assert LintConfig.module_key("/a/b/repro/sim/engine.py") == "sim/engine.py"
        assert LintConfig.module_key("scratch.py") == "scratch.py"

    def test_pyproject_loading_extends_allowlists(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'ignore = ["LSVD005"]\n'
            'immutability-allow = ["analysis/report.py"]\n'
            'sequence-allow = ["tools/x.py"]\n'
        )
        config = LintConfig.from_pyproject(pyproject)
        assert not config.code_enabled("LSVD005")
        assert config.code_enabled("LSVD001")
        assert config.module_allowed(
            "repro/analysis/report.py", config.immutability_allow
        )
        assert config.module_allowed("repro/tools/x.py", config.sequence_allow)

    def test_discover_config_walks_up(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nignore = ["LSVD006"]\n'
        )
        nested = tmp_path / "repro" / "core"
        nested.mkdir(parents=True)
        config = discover_config(nested)
        assert not config.code_enabled("LSVD006")

    def test_real_repo_pyproject_parses(self):
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[1]
        config = LintConfig.from_pyproject(repo / "pyproject.toml")
        assert config.code_enabled("LSVD001")
