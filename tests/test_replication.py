"""Tests for asynchronous replication via lazy object copy (§4.8)."""

import random

from repro.core import LSVDConfig, LSVDVolume
from repro.core.replication import Replicator
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def make_volume():
    store = InMemoryObjectStore()
    image = DiskImage(4 * MiB)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    return store, LSVDVolume.create(store, "vd", 16 * MiB, image, cfg), cfg


def test_replicates_objects_older_than_min_age():
    src, vol, cfg = make_volume()
    dst = InMemoryObjectStore()
    rep = Replicator(src, dst, "vd", min_age=60.0)
    rep.observe(now=0.0)
    for i in range(32):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    rep.observe(now=10.0)
    assert rep.step(now=20.0) == []  # too young
    copied = rep.step(now=100.0)
    assert copied
    assert rep.stats.bytes_copied > 0


def test_replica_mounts_consistently():
    src, vol, cfg = make_volume()
    dst = InMemoryObjectStore()
    rep = Replicator(src, dst, "vd", min_age=0.0)
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    rep.step(now=1.0)
    cache = DiskImage(4 * MiB)
    replica = LSVDVolume.open(dst, "vd", cache, cfg, cache_lost=True)
    for i in range(64):
        assert replica.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_replica_with_missing_tail_is_a_prefix():
    """Objects arriving out of order / late: replica is an older prefix."""
    src, vol, cfg = make_volume()
    dst = InMemoryObjectStore()
    rep = Replicator(src, dst, "vd", min_age=0.0)
    for i in range(16):
        vol.write(i * 4096, b"old!" * 1024)
    vol.drain()
    rep.step(now=1.0)  # replicate epoch 1
    for i in range(16):
        vol.write(i * 4096, b"new!" * 1024)
    vol.drain()  # epoch 2 written at source but never replicated
    cache = DiskImage(4 * MiB)
    replica = LSVDVolume.open(dst, "vd", cache, cfg, cache_lost=True)
    assert replica.read(0, 4096) == b"old!" * 1024


def test_gc_deleted_objects_are_skipped():
    src, vol, cfg = make_volume()
    dst = InMemoryObjectStore()
    rep = Replicator(src, dst, "vd", min_age=1e9)  # nothing ships for a while
    rng = random.Random(3)
    for i in range(1500):
        vol.write(rng.randrange(0, 512) * 4096, bytes([i % 255 + 1]) * 4096)
    vol.drain()
    assert vol.gc.stats.victims_cleaned > 0
    rep.observe(now=0.0)
    rep.min_age = 0.0
    rep.step(now=1.0)
    assert rep.stats.objects_skipped_deleted >= 0
    # everything shipped is still mountable
    cache = DiskImage(4 * MiB)
    replica = LSVDVolume.open(dst, "vd", cache, cfg, cache_lost=True)
    assert replica.size == vol.size


def test_replication_bytes_less_than_written_when_gc_active():
    """Paper: 103 GB written vs 85 GB replicated, GC deletes some first."""
    src, vol, cfg = make_volume()
    dst = InMemoryObjectStore()
    rep = Replicator(src, dst, "vd", min_age=1e9)
    rng = random.Random(9)
    client_bytes = 0
    for i in range(2000):
        vol.write(rng.randrange(0, 256) * 4096, bytes([i % 255 + 1]) * 4096)
        client_bytes += 4096
        if i % 200 == 0:
            rep.observe(now=float(i))
    vol.drain()
    rep.min_age = 0.0
    rep.step(now=1e12)
    assert rep.stats.objects_skipped_deleted > 0
    assert rep.stats.bytes_copied < vol.bs.stats.backend_bytes + client_bytes
