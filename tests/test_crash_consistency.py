"""Tests for the prefix-consistency checker, plus randomized end-to-end
crash tests of LSVD and bcache (the machinery behind Table 4)."""

import random

import pytest

from repro.baselines import make_bcache_rbd
from repro.core import LSVDConfig, LSVDVolume
from repro.crash import HistoryRecorder, PrefixChecker, decode_stamp, stamp_data
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


# -- stamp encoding -----------------------------------------------------------


def test_stamp_roundtrip():
    data = stamp_data(42, 4096)
    assert len(data) == 4096
    assert decode_stamp(data[:512]) == 42
    assert decode_stamp(data[512:1024]) == 42


def test_stamp_rejects_garbage_and_torn():
    assert decode_stamp(b"\x00" * 512) is None
    torn = bytearray(stamp_data(1, 512))
    torn[300] ^= 0xFF
    assert decode_stamp(bytes(torn)) is None


def test_stamp_requires_alignment():
    with pytest.raises(ValueError):
        stamp_data(1, 100)


# -- checker on a plain image -------------------------------------------------


def test_checker_accepts_full_history():
    img = DiskImage(1 * MiB)
    rec = HistoryRecorder(img.write, img.flush)
    for i in range(10):
        rec.write(i * 4096, 4096)
    rec.barrier()
    verdict = PrefixChecker(rec).check(img.read, require_committed=True)
    assert verdict.ok_prefix and verdict.ok_committed
    assert verdict.cut == 10


def test_checker_accepts_clean_prefix():
    img = DiskImage(1 * MiB)
    rec = HistoryRecorder(img.write, img.flush)
    for i in range(10):
        rec.write(i * 4096, 4096)
    # roll back the last 4 writes (a clean prefix of 6)
    img2 = DiskImage(1 * MiB)
    rec2 = HistoryRecorder(img2.write, img2.flush)
    replay = HistoryRecorder(img2.write, img2.flush)  # unused; direct writes
    for i, r in enumerate(rec.history[:6]):
        img2.write(r.offset, stamp_data(r.write_id, r.length))
    verdict = PrefixChecker(rec).check(img2.read)
    assert verdict.ok_prefix
    assert verdict.cut == 6


def test_checker_rejects_gap_in_history():
    """Later write present without an earlier overlapping-epoch write."""
    img = DiskImage(1 * MiB)
    rec = HistoryRecorder(lambda o, d: None)  # writes go nowhere
    w1 = rec.write(0, 4096)
    w2 = rec.write(8192, 4096)
    # apply only w2 to the image: not a prefix
    img.write(8192, stamp_data(w2, 4096))
    verdict = PrefixChecker(rec).check(img.read)
    assert not verdict.ok_prefix
    assert any("requires write" in p for p in verdict.problems)


def test_checker_detects_lost_committed_write():
    img = DiskImage(1 * MiB)
    rec = HistoryRecorder(lambda o, d: None)
    w1 = rec.write(0, 4096)
    rec.barrier()  # w1 committed
    rec.write(4096, 4096)
    # image reflects nothing at all: cut=0 < committed=1
    verdict = PrefixChecker(rec).check(img.read, require_committed=True)
    assert verdict.ok_prefix  # empty state is a valid (trivial) prefix
    assert verdict.lost_committed
    assert not verdict.ok_committed


def test_checker_overwrites_same_lba():
    img = DiskImage(1 * MiB)
    rec = HistoryRecorder(img.write, img.flush)
    rec.write(0, 4096)
    rec.write(0, 4096)  # overwrite
    verdict = PrefixChecker(rec).check(img.read)
    assert verdict.ok_prefix
    assert verdict.cut == 2


# -- end-to-end: LSVD passes, bcache fails (Table 4) --------------------------


def lsvd_stack(cache_size=2 * MiB):
    store = InMemoryObjectStore()
    image = DiskImage(cache_size)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=16)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    return store, image, cfg, vol


@pytest.mark.parametrize("seed", range(5))
def test_lsvd_crash_with_cache_is_prefix_consistent_and_loses_nothing(seed):
    store, image, cfg, vol = lsvd_stack()
    rng = random.Random(seed)
    rec = HistoryRecorder(vol.write, vol.flush)
    for i in range(150):
        rec.write(rng.randrange(0, 1024) * 4096, 4096 * rng.randrange(1, 3))
        if rng.random() < 0.2:
            rec.barrier()
    rec.barrier()
    image.crash(rng=rng)
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    verdict = PrefixChecker(rec).check(vol2.read, require_committed=True)
    assert verdict.ok_prefix, verdict.problems[:3]
    assert verdict.ok_committed, (verdict.cut, verdict.committed_through)


@pytest.mark.parametrize("seed", range(5))
def test_lsvd_cache_loss_is_still_prefix_consistent(seed):
    """Table 4, LSVD rows: even deleting the cache yields a mountable,
    prefix-consistent image."""
    store, image, cfg, vol = lsvd_stack()
    rng = random.Random(100 + seed)
    rec = HistoryRecorder(vol.write, vol.flush)
    for i in range(200):
        rec.write(rng.randrange(0, 1024) * 4096, 4096)
        if rng.random() < 0.1:
            rec.barrier()
    fresh = DiskImage(2 * MiB)
    vol2 = LSVDVolume.open(store, "vd", fresh, cfg, cache_lost=True)
    verdict = PrefixChecker(rec).check(vol2.read)
    assert verdict.ok_prefix, verdict.problems[:3]
    # committed writes MAY be lost in this worst case - that is the
    # documented prefix-consistency guarantee, not a bug.


def test_bcache_cache_loss_violates_prefix_consistency():
    """Table 4, bcache row 2: the backing image after cache loss is NOT a
    prefix of the write history."""
    violations = 0
    for seed in range(8):
        cache, backing, _img = make_bcache_rbd("b", 16 * MiB, 2 * MiB)
        rng = random.Random(seed)
        rec = HistoryRecorder(cache.write, cache.flush)
        for i in range(150):
            rec.write(rng.randrange(0, 1024) * 4096, 4096)
            if rng.random() < 0.15:
                # bcache destages opportunistically between bursts, in
                # LBA order, i.e. NOT in write order - and slowly, so a
                # large dirty backlog remains at the crash (Figure 11)
                cache.writeback_step(max_blocks=2)
        cache.lose_cache()
        verdict = PrefixChecker(rec).check(
            lambda off, n: backing.read(off, n)[0]
        )
        if not verdict.ok_prefix:
            violations += 1
    assert violations > 0, "bcache should corrupt at least one run"


# -- temperature-aware placement: crash across open class batches -------------


def sepbit_stack():
    store = InMemoryObjectStore()
    image = DiskImage(2 * MiB)
    cfg = LSVDConfig(
        batch_size=32 * 1024,
        checkpoint_interval=8,
        placement="sepbit",
        gc_policy="cost_benefit",
    )
    vol = LSVDVolume.create(store, "vd", 8 * MiB, image, cfg)
    return store, image, cfg, vol


@pytest.mark.parametrize("seed", range(5))
def test_crash_with_open_class_batches_is_prefix_consistent(seed):
    """Class separation must not weaken Table 4: with writes spread over
    several open temperature batches and GC relocating class-tagged
    objects, a crash still recovers to a committed-complete prefix, and
    recovery re-registers every object under its header's class."""
    store, image, cfg, vol = sepbit_stack()
    rng = random.Random(40 + seed)
    rec = HistoryRecorder(vol.write, vol.flush)
    saw_multi_batch = False
    for i in range(800):
        # 80 % of writes hammer an eighth of the span: hot/warm/cold all
        # get traffic and the dead-byte churn keeps GC rounds running
        if rng.random() < 0.8:
            lba = rng.randrange(0, 256) * 4096
        else:
            lba = rng.randrange(0, 2048) * 4096
        rec.write(lba, 4096)
        if rng.random() < 0.15:
            rec.barrier()
        open_batches = sum(1 for b in vol.bs.batches.values() if not b.is_empty)
        saw_multi_batch = saw_multi_batch or open_batches >= 2
    # fixture guards: the run really did interleave class batches and
    # relocate class-tagged GC objects before the crash
    assert saw_multi_batch
    assert vol.bs.stats.gc_bytes > 0
    image.crash(rng=rng)
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    verdict = PrefixChecker(rec).check(vol2.read, require_committed=True)
    assert verdict.ok_prefix, verdict.problems[:3]
    assert verdict.ok_committed, (verdict.cut, verdict.committed_through)
    # replay rebuilt the per-class view from the object headers: the
    # class breakdown covers exactly the recovered object set, and the
    # skewed run left more than one temperature populated
    occ = vol2.bs.occupancy_by_class()
    live = sum(l for l, _t in occ.values())
    total = sum(t for _l, t in occ.values())
    assert (live, total) == vol2.bs.occupancy()
    assert sum(1 for _l, t in occ.values() if t > 0) >= 2


@pytest.mark.parametrize("seed", range(3))
def test_cache_loss_with_open_class_batches_is_prefix_consistent(seed):
    """Worst case: every open class batch dies with the cache, yet the
    sealed per-class objects on the backend are still an exact record
    prefix (the lockstep group-seal guarantee)."""
    store, image, cfg, vol = sepbit_stack()
    rng = random.Random(70 + seed)
    rec = HistoryRecorder(vol.write, vol.flush)
    for i in range(800):
        lba = rng.randrange(0, 256 if rng.random() < 0.8 else 2048) * 4096
        rec.write(lba, 4096)
        if rng.random() < 0.1:
            rec.barrier()
    fresh = DiskImage(2 * MiB)
    vol2 = LSVDVolume.open(store, "vd", fresh, cfg, cache_lost=True)
    verdict = PrefixChecker(rec).check(vol2.read)
    assert verdict.ok_prefix, verdict.problems[:3]


def test_lsvd_beats_bcache_on_crash_matrix():
    """The Table 4 summary: LSVD 3/3 clean, bcache loses data."""
    lsvd_clean = 0
    for trial in range(3):
        store, image, cfg, vol = lsvd_stack()
        rng = random.Random(trial)
        rec = HistoryRecorder(vol.write, vol.flush)
        for i in range(100):
            rec.write(rng.randrange(0, 512) * 4096, 4096)
        rec.barrier()
        fresh = DiskImage(2 * MiB)
        vol2 = LSVDVolume.open(store, "vd", fresh, cfg, cache_lost=True)
        if PrefixChecker(rec).check(vol2.read).ok_prefix:
            lsvd_clean += 1
    assert lsvd_clean == 3
