"""Direct unit tests for the flow engine: CFG shapes and the solver.

The tricky shapes the flow rules depend on: try/finally with return
(per-continuation finally duplication), break inside an except clause,
nested async defs (separate CFGs, await-point detection), loop else
clauses, and handler dispatch that does / does not let exceptions
escape.
"""

import ast
import textwrap

from repro.lint.flow.cfg import (
    build_cfg,
    iter_function_cfgs,
    iter_functions,
)
from repro.lint.flow.dataflow import BACKWARD, FORWARD, FlowAnalysis, solve


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = dict(iter_functions(tree))
    func = funcs[name] if name is not None else next(iter(funcs.values()))
    return build_cfg(func)


def node_at(cfg, line):
    nodes = [n for n in cfg.stmt_nodes() if n.line == line]
    assert nodes, f"no node at line {line}"
    return nodes[0]


class TestTryFinally:
    SRC = """
        def f(x):
            try:
                return x
            finally:
                cleanup()
    """

    def test_return_path_runs_finally(self):
        cfg = cfg_of(self.SRC)
        ret = node_at(cfg, 4)
        (edge,) = [e for e in ret.succ if e.kind == "return"]
        assert cfg.nodes[edge.dst].line == 6  # cleanup(), not exit
        assert cfg.reachable(ret, cfg.exit)

    def test_finally_copies_are_per_continuation(self):
        src = """
            def f(x):
                try:
                    if x:
                        return 1
                finally:
                    cleanup()
                return 0
        """
        cfg = cfg_of(src)
        # one finally copy continues to `return 0`, a distinct one to
        # exit (for the return-1 path); the never-taken exception copy
        # is not materialised at all
        copies = cfg.nodes_at_line(7)
        assert len(copies) == 2
        fallthrough, returning = None, None
        for copy in copies:
            dsts = {cfg.nodes[e.dst].line or cfg.nodes[e.dst].kind for e in copy.succ}
            if 8 in dsts:
                fallthrough = copy
            if "exit" in dsts:
                returning = copy
        assert fallthrough is not None and returning is not None
        assert fallthrough is not returning

    def test_facts_stay_separated_per_copy(self):
        # the return-path finally copy must not be reachable from the
        # fallthrough path — that is the whole point of duplication
        src = """
            def f(x):
                try:
                    if x:
                        return 1
                finally:
                    cleanup()
                return 0
        """
        cfg = cfg_of(src)
        ret1 = node_at(cfg, 5)
        tail = node_at(cfg, 8)
        (ret_edge,) = [e for e in ret1.succ if e.kind == "return"]
        return_side_finally = cfg.nodes[ret_edge.dst]
        assert not cfg.reachable(return_side_finally, tail)


class TestLoopsAndHandlers:
    def test_break_inside_except_leaves_the_loop(self):
        src = """
            def f(items):
                for it in items:
                    try:
                        use(it)
                    except ValueError:
                        break
                tail()
        """
        cfg = cfg_of(src)
        brk = node_at(cfg, 7)
        (edge,) = [e for e in brk.succ if e.kind == "break"]
        assert cfg.nodes[edge.dst].line == 8  # tail(), past the loop
        # and the handler is reachable from the raising body statement
        assert cfg.reachable(node_at(cfg, 5), brk)

    def test_while_else_runs_on_normal_exhaustion(self):
        src = """
            def f(n):
                while n:
                    n = step(n)
                else:
                    finish()
                after()
        """
        cfg = cfg_of(src)
        head = node_at(cfg, 3)
        kinds = {e.kind: cfg.nodes[e.dst].line for e in head.succ}
        assert kinds["true"] == 4
        assert kinds["false"] == 6  # else clause, then after()
        assert cfg.reachable(node_at(cfg, 6), node_at(cfg, 7))

    def test_narrow_handler_lets_exceptions_escape(self):
        src = """
            def f():
                try:
                    work()
                except ValueError:
                    pass
        """
        cfg = cfg_of(src)
        assert cfg.reachable(node_at(cfg, 4), cfg.raise_exit)

    def test_broad_handler_catches_everything(self):
        src = """
            def f():
                try:
                    work()
                except Exception:
                    pass
        """
        cfg = cfg_of(src)
        assert not cfg.reachable(node_at(cfg, 4), cfg.raise_exit)


class TestAsyncShapes:
    SRC = """
        def outer():
            async def inner(self):
                await self.go()
            return inner
    """

    def test_nested_defs_get_separate_cfgs(self):
        tree = ast.parse(textwrap.dedent(self.SRC))
        names = [q for q, _f, _c in iter_function_cfgs(tree)]
        assert names == ["outer", "outer.inner"]

    def test_nested_body_is_opaque_to_the_parent(self):
        cfg = cfg_of(self.SRC, "outer")
        assert cfg.nodes_at_line(4) == []  # the await lives in inner only
        def_node = node_at(cfg, 3)
        assert not def_node.suspends

    def test_await_points_are_marked(self):
        cfg = cfg_of(self.SRC, "outer.inner")
        assert node_at(cfg, 4).suspends

    def test_async_for_and_with_suspend(self):
        src = """
            async def g(self):
                async with self.lock:
                    async for x in self.items():
                        yield x
        """
        cfg = cfg_of(src)
        assert node_at(cfg, 3).suspends
        assert node_at(cfg, 4).suspends
        assert node_at(cfg, 5).suspends


class _Reaching(FlowAnalysis):
    """Toy forward analysis: lines whose `x = ...` may reach here."""

    direction = FORWARD

    def boundary(self, cfg, node):
        return frozenset()

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, node, fact):
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "x"
        ):
            return frozenset((node.line,))
        return fact


class _SinkReach(FlowAnalysis):
    """Toy backward analysis: sink() nodes reachable without flush()."""

    direction = BACKWARD

    def _calls(self, node, name):
        return any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == name
            for part in node.parts
            for sub in ast.walk(part)
        )

    def boundary(self, cfg, node):
        return frozenset()

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, node, fact):
        if self._calls(node, "flush"):
            return frozenset()
        if self._calls(node, "sink"):
            return fact | frozenset((node.index,))
        return fact


class TestSolver:
    def test_forward_facts_merge_at_joins(self):
        src = """
            def f(c):
                x = 1
                if c:
                    x = 2
                use(x)
        """
        cfg = cfg_of(src)
        solution = solve(cfg, _Reaching())
        assert solution.before[node_at(cfg, 6).index] == frozenset((3, 5))
        assert solution.before[node_at(cfg, 5).index] == frozenset((3,))

    def test_backward_finds_the_unguarded_path(self):
        src = """
            def f(c):
                if c:
                    flush()
                sink()
        """
        cfg = cfg_of(src)
        solution = solve(cfg, _SinkReach())
        sink_index = node_at(cfg, 5).index
        # the else path reaches sink() without a flush
        assert solution.before[cfg.entry.index] == frozenset((sink_index,))

    def test_backward_clean_when_every_path_is_guarded(self):
        src = """
            def f(c):
                if c:
                    flush()
                else:
                    flush()
                sink()
        """
        cfg = cfg_of(src)
        solution = solve(cfg, _SinkReach())
        assert solution.before[cfg.entry.index] == frozenset()
