"""Regression: destaged-then-rolled-back records must not collide.

Scenario (found by randomized fault injection): records 14-16 are
destaged to the backend (high-water mark 16) but then *physically lost*
from the cache log by a crash before any barrier.  Recovery rolls the
cache back to record 13.  If new writes were numbered 14.. again, a later
batch settlement (or the next recovery) would release them against the
stale high-water mark and lose acknowledged-and-committed data.
"""

import random


from repro.core import LSVDConfig, LSVDVolume
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def test_rolled_back_destaged_records_do_not_collide():
    store = InMemoryObjectStore()
    image = DiskImage(4 * MiB)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 8 * MiB, image, cfg)
    rec = HistoryRecorder(vol.write, vol.flush)

    # phase 1: enough writes to seal a batch (records 1..16 destaged)
    for i in range(16):
        rec.write(i * 4096, 4096)
    assert vol.bs.last_record_seq_destaged >= 16
    # a few more, NOT barriered: these will die with the crash
    for i in range(16, 20):
        rec.write(i * 4096, 4096)

    # crash losing everything unflushed: the checkpointed prefix survives
    image.crash(rng=random.Random(1), survive_probability=0.0, allow_torn=False)
    vol = LSVDVolume.open(store, "vd", image, cfg)
    rec._write_fn, rec._flush_fn = vol.write, vol.flush
    verdict = PrefixChecker(rec).check(vol.read)
    assert verdict.ok_prefix
    rec.history = [r for r in rec.history if r.write_id <= verdict.cut]

    # the cache sequence must have jumped past the backend watermark
    assert vol.wc.next_seq > vol.bs.last_record_seq_destaged

    # phase 2: new committed writes; their record seqs must not be
    # releasable against the stale watermark
    for i in range(32, 40):
        rec.write(i * 4096, 4096)
    rec.barrier()
    image.crash(rng=random.Random(2), survive_probability=1.0, allow_torn=False)
    vol = LSVDVolume.open(store, "vd", image, cfg)
    verdict = PrefixChecker(rec).check(vol.read, require_committed=True)
    assert verdict.ok_prefix, verdict.problems[:3]
    assert verdict.ok_committed, (verdict.cut, verdict.committed_through)


def test_cache_lost_open_also_jumps_sequence():
    store = InMemoryObjectStore()
    image = DiskImage(4 * MiB)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 8 * MiB, image, cfg)
    for i in range(16):
        vol.write(i * 4096, b"x" * 4096)
    assert vol.bs.last_record_seq_destaged >= 16
    fresh = DiskImage(4 * MiB)
    vol2 = LSVDVolume.open(store, "vd", fresh, cfg, cache_lost=True)
    assert vol2.wc.next_seq > vol2.bs.last_record_seq_destaged
    # new writes + crash-with-cache keep everything committed
    rec = HistoryRecorder(vol2.write, vol2.flush)
    for i in range(20, 30):
        rec.write(i * 4096, 4096)
    rec.barrier()
    fresh.crash(rng=random.Random(3), survive_probability=1.0, allow_torn=False)
    vol3 = LSVDVolume.open(store, "vd", fresh, cfg)
    verdict = PrefixChecker(rec).check(vol3.read)
    # phase-1 writes carry no stamps, so only verify the recorded epoch
    assert verdict.cut == 10
