"""Tests for the log-structured write-back cache (Figure 2, §3.1, §3.3)."""

import random

import pytest

from repro.core.errors import CacheFullError
from repro.core.write_cache import WriteCache
from repro.devices.image import DiskImage

MiB = 1 << 20


def make_cache(size=8 * MiB, slot=256 * 1024):
    img = DiskImage(size, name="cache-ssd")
    wc = WriteCache(img, 0, size, ckpt_slot_size=slot)
    wc.format()
    return wc


def test_append_and_read_back():
    wc = make_cache()
    wc.append([(4096, b"A" * 4096)])
    [(lba, length, data)] = wc.read(4096, 4096)
    assert (lba, length) == (4096, 4096)
    assert data == b"A" * 4096


def test_append_assigns_monotonic_seqs():
    wc = make_cache()
    r1 = wc.append([(0, b"a" * 512)])
    r2 = wc.append([(4096, b"b" * 512)])
    assert r2.seq == r1.seq + 1


def test_overwrite_serves_newest():
    wc = make_cache()
    wc.append([(0, b"old!" * 128)])
    wc.append([(0, b"new!" * 128)])
    [(_, _, data)] = wc.read(0, 512)
    assert data == b"new!" * 128


def test_partial_overwrite_mix():
    wc = make_cache()
    wc.append([(0, b"A" * 1024)])
    wc.append([(512, b"B" * 512)])
    pieces = wc.read(0, 1024)
    image = bytearray(1024)
    for lba, length, data in pieces:
        image[lba : lba + length] = data
    assert bytes(image) == b"A" * 512 + b"B" * 512


def test_read_gap_returns_nothing():
    wc = make_cache()
    wc.append([(0, b"x" * 512)])
    assert wc.read(1 << 20, 512) == []


def test_sequential_layout_on_ssd():
    """Records land at strictly increasing physical offsets (the log)."""
    wc = make_cache()
    offsets = []
    for i in range(10):
        before = wc.head_virt
        wc.append([(i * 123 * 4096, b"z" * 4096)])
        offsets.append(before)
    assert offsets == sorted(offsets)


def test_release_through_frees_space_and_map():
    wc = make_cache()
    r1 = wc.append([(0, b"a" * 4096)])
    r2 = wc.append([(8192, b"b" * 4096)])
    used_before = wc.used_bytes
    freed = wc.release_through(r1.seq)
    assert freed > 0
    assert wc.used_bytes < used_before
    assert wc.read(0, 4096) == []  # record 1's mapping dropped
    assert wc.read(8192, 4096) != []  # record 2 still live


def test_release_keeps_newer_overwrite():
    """Releasing an old record must not drop a newer mapping for the
    same LBA that lives in a later record."""
    wc = make_cache()
    r1 = wc.append([(0, b"old." * 1024)])
    wc.append([(0, b"new." * 1024)])
    wc.release_through(r1.seq)
    [(_, _, data)] = wc.read(0, 4096)
    assert data == b"new." * 1024


def test_cache_full_raises():
    wc = make_cache(size=2 * MiB, slot=64 * 1024)
    with pytest.raises(CacheFullError):
        for i in range(10_000):
            wc.append([(i * 4096, b"f" * 4096)])


def test_wraparound_after_release():
    """The ring reuses freed space across the wrap boundary."""
    wc = make_cache(size=2 * MiB, slot=64 * 1024)
    seqs = []
    for round_ in range(6):  # writes far exceed the log size
        try:
            for i in range(50):
                rec = wc.append([(i * 4096, bytes([round_]) * 4096)])
                seqs.append(rec.seq)
        except CacheFullError:
            wc.release_through(seqs[-10])  # destage all but the last few
    assert wc.head_virt > wc.log_size  # wrapped at least once


def test_dirty_bytes_tracks_unreleased():
    wc = make_cache()
    assert wc.dirty_bytes == 0
    rec = wc.append([(0, b"d" * 4096)])
    assert wc.dirty_bytes > 0
    wc.release_through(rec.seq)
    assert wc.dirty_bytes == 0


def test_barrier_flushes_image():
    wc = make_cache()
    wc.append([(0, b"d" * 4096)])
    assert wc.image.pending_writes > 0
    wc.barrier()
    assert wc.image.pending_writes == 0


# -- recovery ----------------------------------------------------------------


def recover_copy(wc):
    """Build a fresh WriteCache over the same image and recover it."""
    fresh = WriteCache(wc.image, wc.region_offset, wc.region_size, wc.slot_size)
    fresh.recover()
    return fresh


def test_recover_from_checkpoint_only():
    wc = make_cache()
    wc.append([(0, b"a" * 4096)])
    wc.append([(8192, b"b" * 4096)])
    wc.barrier()
    wc.checkpoint()
    fresh = recover_copy(wc)
    assert [r.seq for r in fresh.records] == [r.seq for r in wc.records]
    [(_, _, data)] = fresh.read(0, 4096)
    assert data == b"a" * 4096


def test_recover_replays_records_after_checkpoint():
    wc = make_cache()
    wc.append([(0, b"a" * 4096)])
    wc.checkpoint()
    wc.append([(8192, b"b" * 4096)])
    wc.append([(16384, b"c" * 4096)])
    wc.barrier()
    fresh = recover_copy(wc)
    assert len(fresh.records) == 3
    assert fresh.next_seq == wc.next_seq
    [(_, _, data)] = fresh.read(16384, 4096)
    assert data == b"c" * 4096


def test_recover_stops_at_torn_record():
    """Crash without flush: recovery takes the valid prefix only."""
    wc = make_cache()
    wc.append([(0, b"a" * 4096)])
    wc.barrier()  # record 1 durable
    wc.append([(8192, b"b" * 4096)])  # record 2 pending
    wc.image.crash(
        rng=random.Random(3), survive_probability=0.0, allow_torn=False
    )
    fresh = recover_copy(wc)
    assert len(fresh.records) == 1
    assert fresh.read(8192, 4096) == []
    [(_, _, data)] = fresh.read(0, 4096)
    assert data == b"a" * 4096


def test_recover_prefix_when_middle_record_lost():
    """If record N is lost but N+1 survived, replay must stop at N-1."""
    wc = make_cache()
    wc.append([(0, b"a" * 4096)])
    wc.barrier()
    wc.append([(8192, b"b" * 4096)])  # lost
    wc.append([(16384, b"c" * 4096)])  # survives
    # keep only the third record's write: crash keeping pending[1]
    pending = wc.image._pending
    assert len(pending) == 2
    wc.image._pending = [pending[1]]
    wc.image.crash(rng=random.Random(0), survive_probability=1.0, allow_torn=False)
    fresh = recover_copy(wc)
    assert [r.seq for r in fresh.records] == [1]
    assert fresh.read(16384, 4096) == []


def test_recover_survives_many_random_crashes():
    rng = random.Random(42)
    for trial in range(15):
        wc = make_cache(size=4 * MiB, slot=128 * 1024)
        expected = {}
        durable_upto = 0
        for i in range(30):
            lba = rng.randrange(0, 64) * 4096
            data = bytes([i + 1]) * 4096
            rec = wc.append([(lba, data)])
            expected[rec.seq] = (lba, data)
            if rng.random() < 0.3:
                wc.barrier()
                durable_upto = rec.seq
        wc.image.crash(rng=rng)
        fresh = recover_copy(wc)
        recovered = {r.seq for r in fresh.records}
        # all records up to the last barrier must be there (committed)
        assert set(range(1, durable_upto + 1)) <= recovered
        # recovered records form a consecutive prefix
        assert recovered == set(range(1, len(recovered) + 1))
        # and their content is intact
        replay = {}
        for record, _ref in fresh.records_after(0):
            for idx, (lba, length) in enumerate(record.extents):
                replay[lba] = fresh.record_data(record, idx)
        for seq in sorted(recovered):
            lba, data = expected[seq]
            # newest-wins: only check lbas whose final writer is <= prefix
            final_writer = max(s for s, (l, _d) in expected.items() if l == lba)
            if final_writer <= len(recovered):
                assert replay[lba] == expected[final_writer][1]


def test_recover_multi_chunk_map_checkpoint_plus_replay():
    """Recovery must rebuild a map that spans several leaf chunks.

    ~300 scattered extents push the checkpointed extent map past one
    256-extent leaf; ~60 more records after the checkpoint exercise the
    replay path on the restored (bulk-loaded) map.  The recovered map
    must equal the live one entry for entry.
    """
    wc = make_cache(size=16 * MiB, slot=512 * 1024)
    for i in range(300):
        # stride 2 blocks: extents never touch, so none coalesce away
        wc.append([(i * 8192, bytes([i % 255 + 1]) * 4096)])
    wc.barrier()
    wc.checkpoint()
    assert len(wc.map._chunks) > 1, "test must span multiple leaf chunks"
    for i in range(60):
        wc.append([((300 + i) * 8192, bytes([(i + 7) % 255 + 1]) * 4096)])
    wc.barrier()
    fresh = recover_copy(wc)
    assert len(fresh.records) == 360
    assert fresh.map.entries() == wc.map.entries()
    assert fresh.map.mapped_bytes() == wc.map.mapped_bytes()
    assert len(fresh.map._chunks) > 1
    # spot-check payloads through the recovered map
    for i in (0, 255, 299, 310, 359):
        [(_, _, data)] = fresh.read(i * 8192, 4096)
        expected = (
            bytes([i % 255 + 1]) if i < 300 else bytes([(i - 300 + 7) % 255 + 1])
        ) * 4096
        assert data == expected


def test_records_after_filters_by_seq():
    wc = make_cache()
    wc.append([(0, b"a" * 512)])
    wc.append([(4096, b"b" * 512)])
    wc.append([(8192, b"c" * 512)])
    seqs = [rec.seq for rec, _ in wc.records_after(1)]
    assert seqs == [2, 3]


def test_checkpoint_alternates_slots_and_newest_wins():
    wc = make_cache()
    wc.append([(0, b"a" * 512)])
    wc.checkpoint()
    wc.append([(4096, b"b" * 512)])
    wc.checkpoint()
    fresh = recover_copy(wc)
    assert len(fresh.records) == 2


def test_clean_close_sets_flag():
    wc = make_cache()
    wc.append([(0, b"a" * 512)])
    wc.close()
    fresh = WriteCache(wc.image, 0, wc.region_size, wc.slot_size)
    fresh.recover()
    assert fresh._clean in (True, False)  # flag readable; semantics in volume


def test_region_too_small_rejected():
    img = DiskImage(64 * 1024)
    with pytest.raises(ValueError):
        WriteCache(img, 0, 64 * 1024, ckpt_slot_size=32 * 1024)
