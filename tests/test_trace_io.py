"""Tests for block-trace serialisation and replay."""

import io

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore
from repro.workloads import FioJob
from repro.workloads.base import FLUSH, READ, WRITE, IOOp, take
from repro.workloads.trace_io import (
    TraceRecorder,
    dump_trace,
    load_trace,
    replay_trace,
)

MiB = 1 << 20


def test_dump_load_roundtrip():
    ops = [
        IOOp(WRITE, 0, 4096),
        IOOp(READ, 8192, 512),
        IOOp(FLUSH),
        IOOp(WRITE, 1 << 20, 16384),
    ]
    buf = io.StringIO()
    assert dump_trace(ops, buf) == 4
    buf.seek(0)
    out = list(load_trace(buf))
    assert out == ops


def test_file_roundtrip(tmp_path):
    ops = take(FioJob(rw="randwrite", bs=4096, size=1 * MiB, seed=1).ops(), 100)
    path = tmp_path / "trace.txt"
    dump_trace(ops, path)
    assert list(load_trace(path)) == ops
    text = path.read_text()
    assert text.startswith("# repro block trace")


def test_load_rejects_garbage():
    buf = io.StringIO("W 1\n")
    with pytest.raises(ValueError):
        list(load_trace(buf))
    buf = io.StringIO("X 1 2\n")
    with pytest.raises(ValueError):
        list(load_trace(buf))


def test_load_skips_comments_and_blanks():
    buf = io.StringIO("# hello\n\nW 0 512\n")
    assert list(load_trace(buf)) == [IOOp(WRITE, 0, 512)]


def test_recorder_captures_volume_traffic(tmp_path):
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024)
    vol = LSVDVolume.create(store, "vd", 8 * MiB, DiskImage(2 * MiB), cfg)
    rec = TraceRecorder(vol)
    rec.write(0, b"x" * 4096)
    rec.read(0, 4096)
    rec.flush()
    path = tmp_path / "cap.txt"
    assert rec.save(path) == 3
    replayed = list(load_trace(path))
    assert [op.kind for op in replayed] == [WRITE, READ, FLUSH]


def test_replay_against_fresh_volume(tmp_path):
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024)
    ops = take(FioJob(rw="randwrite", bs=4096, size=4 * MiB, seed=2, fsync_every=10).ops(), 200)
    path = tmp_path / "t.txt"
    dump_trace(ops, path)
    vol = LSVDVolume.create(store, "vd", 8 * MiB, DiskImage(2 * MiB), cfg)
    applied = replay_trace(load_trace(path), vol)
    assert applied == 200
    # every written offset carries the filler byte
    writes = [op for op in ops if op.kind == WRITE]
    assert vol.read(writes[-1].offset, 4096) == b"\xab" * 4096
