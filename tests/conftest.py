"""Shared pytest wiring: flight-recorder bundles for failed tests.

When a test fails, dump the most recent span recorder's flight-recorder
bundle (last N completed span trees + stage totals) next to the other
bench artifacts so CI can upload it; see DESIGN.md "Span tracing".
Directory override: ``REPRO_FLIGHTREC_DIR`` (default ``bench-out``).
"""

import os
import re

import pytest

from repro.obs.spans import dump_last_flight


def _bundle_path(nodeid: str) -> str:
    out_dir = os.environ.get("REPRO_FLIGHTREC_DIR", "bench-out")
    os.makedirs(out_dir, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid)[-80:]
    return os.path.join(out_dir, f"flightrec_{safe}.json")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        try:
            dump_last_flight(_bundle_path(item.nodeid), reason=f"pytest: {item.nodeid}")
        except OSError:
            pass  # a failed dump must never mask the real test failure
