"""Fixture tests for the flow-sensitive rules (LSVD010-LSVD013).

Mirrors ``tests/test_lint_rules.py``: each rule gets a violating
fixture, clean variants (one per way of discharging the obligation),
a suppressed variant, and an allowlisted variant.  Also covers the
``--rule`` / ``--explain`` CLI surface the flow rules introduced.
"""

import textwrap
from dataclasses import replace

from repro.lint import ALL_RULES, LintConfig, LintRunner
from repro.lint.cli import explain_rules, main as lint_main, rule_sections
from repro.lint.rules.async_safety import AsyncCancellationRule
from repro.lint.rules.durability import DurabilityOrderingRule
from repro.lint.rules.recovery_order import RecoveryMutationOrderRule
from repro.lint.rules.settlement import SettlementLeakRule


def lint_src(relkey, source, config=None):
    """Run every rule over ``source`` as if it lived at repro/<relkey>."""
    runner = LintRunner([cls() for cls in ALL_RULES], config or LintConfig())
    return runner.check_source(f"repro/{relkey}", textwrap.dedent(source))


def only(diags, code):
    return [d for d in diags if d.code == code]


def codes(diags):
    return [d.code for d in diags]


# ---------------------------------------------------------------------------
# LSVD010 settlement-leak
# ---------------------------------------------------------------------------


class TestSettlementLeak:
    # core/block_store.py sits in the settlement dirs and is exempt from
    # the LSVD001 layering rule, so fixtures only exercise LSVD010
    KEY = "core/block_store.py"

    BAD = """
        def stash(self, store, name, data):
            handle = store.put(name, data)
            self.log(name)
    """

    def test_leaked_handle_is_flagged(self):
        diags = only(lint_src(self.KEY, self.BAD), "LSVD010")
        assert len(diags) == 1
        assert diags[0].line == 3
        assert "handle" in diags[0].message

    def test_discarded_put_result_is_flagged(self):
        src = """
            def stash(self, store, name, data):
                store.put(name, data)
        """
        diags = only(lint_src(self.KEY, src), "LSVD010")
        assert len(diags) == 1

    def test_settled_handle_is_clean(self):
        src = """
            def stash(self, store, name, data):
                handle = store.put(name, data)
                if handle is not None:
                    store.settle(handle)
        """
        assert only(lint_src(self.KEY, src), "LSVD010") == []

    def test_registered_handle_is_clean(self):
        src = """
            def stash(self, store, name, data):
                handle = store.put(name, data)
                self._pending[handle] = name
        """
        assert only(lint_src(self.KEY, src), "LSVD010") == []

    def test_returned_handle_is_clean(self):
        src = """
            def stash(self, store, name, data):
                return store.put(name, data)
        """
        assert only(lint_src(self.KEY, src), "LSVD010") == []

    def test_raising_path_is_forgiven(self):
        src = """
            def stash(self, store, name, data):
                handle = store.put(name, data)
                if handle is None:
                    raise RuntimeError("store settles synchronously")
                store.settle(handle)
        """
        assert only(lint_src(self.KEY, src), "LSVD010") == []

    def test_leak_via_swallowed_exception_path(self):
        # the except->return path reaches normal exit with the handle
        # still live; only the flow engine can see this
        src = """
            def stash(self, store, name, data):
                handle = store.put(name, data)
                try:
                    self.index(name)
                except KeyError:
                    return
                store.settle(handle)
        """
        diags = only(lint_src(self.KEY, src), "LSVD010")
        assert len(diags) == 1
        assert diags[0].line == 3

    def test_overwrite_loses_the_first_handle(self):
        src = """
            def stash(self, store, data):
                h = store.put("a", data)
                h = store.put("b", data)
                store.settle(h)
        """
        diags = only(lint_src(self.KEY, src), "LSVD010")
        assert len(diags) == 1
        assert diags[0].line == 3

    def test_awaited_put_expression_is_the_wait(self):
        # `await store.put(...)` / `yield store.put(...)` as a bare
        # expression IS the settlement wait, not a discard
        src = """
            async def stash(self, store, name, data):
                await store.put(name, data)
        """
        assert only(lint_src(self.KEY, src), "LSVD010") == []

    def test_suppression_comment_silences(self):
        src = """
            def stash(self, store, name, data):
                handle = store.put(name, data)  # lint: disable=LSVD010 -- caller settles
                return None
        """
        assert only(lint_src(self.KEY, src), "LSVD010") == []

    def test_allowlisted_function_is_exempt(self):
        config = replace(
            LintConfig(), settlement_allow=("core/block_store.py::stash",)
        )
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD010") == []

    def test_allowlisted_module_is_exempt(self):
        config = replace(LintConfig(), settlement_allow=("core/block_store.py",))
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD010") == []

    def test_outside_settlement_dirs_is_exempt(self):
        assert only(lint_src("analysis/report.py", self.BAD), "LSVD010") == []


# ---------------------------------------------------------------------------
# LSVD011 durability-ordering
# ---------------------------------------------------------------------------


class TestDurabilityOrdering:
    # core/write_cache.py is one of the durability modules
    KEY = "core/write_cache.py"

    BAD = """
        def finish(self):
            self.wc.release_through(self.last_seq)
    """

    def test_unguarded_ack_is_flagged(self):
        diags = only(lint_src(self.KEY, self.BAD), "LSVD011")
        assert len(diags) == 1
        assert "release_through" in diags[0].message

    def test_flush_before_ack_is_clean(self):
        src = """
            def finish(self):
                self.store.flush()
                self.wc.release_through(self.last_seq)
        """
        assert only(lint_src(self.KEY, src), "LSVD011") == []

    def test_settled_branch_is_evidence(self):
        src = """
            def finish(self):
                if self.batch.settled:
                    self.wc.release_through(self.last_seq)
        """
        assert only(lint_src(self.KEY, src), "LSVD011") == []

    def test_partial_evidence_still_flags(self):
        # the fast=False path reaches the ack with no barrier
        src = """
            def finish(self, fast):
                if fast:
                    self.bs.flush()
                self.wc.release_through(self.last_seq)
        """
        diags = only(lint_src(self.KEY, src), "LSVD011")
        assert len(diags) == 1

    def test_yielded_put_is_evidence_in_the_timed_model(self):
        src = """
            def worker(self):
                yield self.backend.put("obj", 4096)
                self._release_space(4096)
        """
        assert only(lint_src("runtime/lsvd.py", src), "LSVD011") == []

    def test_settlement_callbacks_are_exempt(self):
        src = """
            def settle_put(self, handle):
                self.wc.release_through(handle.seq)
        """
        assert only(lint_src(self.KEY, src), "LSVD011") == []

    def test_suppression_comment_silences(self):
        src = """
            def finish(self):
                self.wc.release_through(self.last_seq)  # lint: disable=LSVD011 -- test hook
        """
        assert only(lint_src(self.KEY, src), "LSVD011") == []

    def test_allowlisted_function_is_exempt(self):
        config = replace(
            LintConfig(), durability_allow=("core/write_cache.py::finish",)
        )
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD011") == []

    def test_outside_durability_modules_is_exempt(self):
        assert only(lint_src("analysis/report.py", self.BAD), "LSVD011") == []


# ---------------------------------------------------------------------------
# LSVD012 recovery-mutation-ordering
# ---------------------------------------------------------------------------


class TestRecoveryMutationOrder:
    KEY = "core/recovery.py"

    BAD = """
        def recover(self):
            try:
                self._ckpt_history.append(7)
                self.store.put("ckpt", b"x")
            except KeyError:
                pass
    """

    def test_mutation_before_durable_write_is_flagged(self):
        diags = only(lint_src(self.KEY, self.BAD), "LSVD012")
        assert len(diags) == 1
        assert diags[0].line == 4
        assert "_ckpt_history" in diags[0].message

    def test_durable_write_first_is_clean(self):
        src = """
            def recover(self):
                try:
                    self.store.put("ckpt", b"x")
                    self._ckpt_history.append(7)
                except KeyError:
                    pass
        """
        assert only(lint_src(self.KEY, src), "LSVD012") == []

    def test_reraising_handler_is_clean(self):
        src = """
            def recover(self):
                try:
                    self._ckpt_history.append(7)
                    self.store.put("ckpt", b"x")
                except KeyError:
                    raise
        """
        assert only(lint_src(self.KEY, src), "LSVD012") == []

    def test_restoring_handler_is_clean(self):
        src = """
            def recover(self):
                saved = list(self._ckpt_history)
                try:
                    self._ckpt_history.append(7)
                    self.store.put("ckpt", b"x")
                except KeyError:
                    self._ckpt_history = saved
        """
        assert only(lint_src(self.KEY, src), "LSVD012") == []

    def test_unhandled_try_is_clean(self):
        # no handler: the exception propagates, the caller sees the
        # failure, nothing is silently half-applied
        src = """
            def recover(self):
                try:
                    self._ckpt_history.append(7)
                    self.store.put("ckpt", b"x")
                finally:
                    self.close()
        """
        assert only(lint_src(self.KEY, src), "LSVD012") == []

    def test_non_recovery_function_is_exempt(self):
        src = """
            def process(self):
                try:
                    self._ckpt_history.append(7)
                    self.store.put("ckpt", b"x")
                except KeyError:
                    pass
        """
        assert only(lint_src(self.KEY, src), "LSVD012") == []

    def test_suppression_comment_silences(self):
        src = """
            def recover(self):
                try:
                    self._ckpt_history.append(7)  # lint: disable=LSVD012 -- idempotent
                    self.store.put("ckpt", b"x")
                except KeyError:
                    pass
        """
        assert only(lint_src(self.KEY, src), "LSVD012") == []

    def test_allowlisted_function_is_exempt(self):
        config = replace(
            LintConfig(), recovery_order_allow=("core/recovery.py::recover",)
        )
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD012") == []


# ---------------------------------------------------------------------------
# LSVD013 async-cancellation-safety
# ---------------------------------------------------------------------------


class TestAsyncCancellation:
    KEY = "core/write_path.py"

    BAD = """
        async def destage(self, batch):
            self._dirty_map[batch.seq] = batch
            await self.backend.put(batch.name, batch.data)
            self.ledger.settle_put(batch.seq)
    """

    def test_unregistered_mutation_across_await_is_flagged(self):
        diags = only(lint_src(self.KEY, self.BAD), "LSVD013")
        assert len(diags) == 1
        assert diags[0].line == 4  # reported at the await point
        assert "_dirty_map" in diags[0].message

    def test_registration_before_await_is_clean(self):
        src = """
            async def destage(self, batch):
                self._dirty_map[batch.seq] = batch
                self.ledger.settle_put(batch.seq)
                await self.backend.put(batch.name, batch.data)
        """
        assert only(lint_src(self.KEY, src), "LSVD013") == []

    def test_pending_table_writes_are_registrations(self):
        src = """
            async def destage(self, batch):
                self._pending[batch.seq] = batch
                await self.backend.put(batch.name, batch.data)
        """
        assert only(lint_src(self.KEY, src), "LSVD013") == []

    def test_mutation_after_await_is_clean(self):
        src = """
            async def destage(self, batch):
                await self.backend.put(batch.name, batch.data)
                self._dirty_map[batch.seq] = batch
        """
        assert only(lint_src(self.KEY, src), "LSVD013") == []

    def test_sync_generators_are_exempt(self):
        # the simulator's timed coroutines are sync generators; yield
        # there is a simulated delay, not a cancellation point
        src = """
            def worker(self):
                self._dirty_map[1] = 2
                yield self.backend.put("k", 4096)
        """
        assert only(lint_src(self.KEY, src), "LSVD013") == []

    def test_nested_async_def_is_checked(self):
        src = """
            def make_destager(self):
                async def destage(batch):
                    self._dirty_map[batch.seq] = batch
                    await self.backend.put(batch.name, batch.data)
                return destage
        """
        diags = only(lint_src(self.KEY, src), "LSVD013")
        assert len(diags) == 1

    def test_suppression_comment_silences(self):
        src = """
            async def destage(self, batch):
                self._dirty_map[batch.seq] = batch
                await self.backend.put(batch.name, batch.data)  # lint: disable=LSVD013 -- shielded
                self.ledger.settle_put(batch.seq)
        """
        assert only(lint_src(self.KEY, src), "LSVD013") == []

    def test_allowlisted_function_is_exempt(self):
        config = replace(
            LintConfig(), async_allow=("core/write_path.py::destage",)
        )
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD013") == []

    def test_outside_async_dirs_is_exempt(self):
        assert only(lint_src("analysis/report.py", self.BAD), "LSVD013") == []


# ---------------------------------------------------------------------------
# --rule / --explain CLI surface
# ---------------------------------------------------------------------------


class TestExplainCli:
    def test_every_rule_docstring_has_all_sections(self):
        for cls in ALL_RULES:
            sections = rule_sections(cls)
            for header in ("Invariant", "Example violation", "Paper"):
                assert header in sections, f"{cls.code} lacks {header}:"
                assert sections[header].strip(), f"{cls.code} has empty {header}:"

    def test_explain_one_rule(self, capsys):
        assert lint_main(["--rule", "LSVD010", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "LSVD010" in out
        assert "Invariant:" in out
        assert "Paper:" in out
        assert "LSVD011" not in out

    def test_explain_all_rules(self, capsys):
        assert lint_main(["--explain"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.code in out

    def test_unknown_rule_code_is_a_usage_error(self, capsys):
        assert lint_main(["--rule", "LSVD099", "--explain"]) == 2
        assert "unknown code" in capsys.readouterr().err

    def test_rule_flag_restricts_the_run(self):
        # a module that violates LSVD001 is clean under --rule LSVD011
        runner_codes = {
            cls.code: cls for cls in ALL_RULES
        }
        assert "LSVD011" in runner_codes
        config = replace(LintConfig(), select=("LSVD011",))
        diags = lint_src(
            "analysis/report.py",
            """
            def sneaky(store, data):
                store.put("vol.00000042", data)
            """,
            config,
        )
        assert codes(diags) == []

    def test_explain_text_mentions_paper_sections(self):
        text = explain_rules(["LSVD011"])
        assert "§3.2" in text


# ---------------------------------------------------------------------------
# the four flow rules expose their metadata consistently
# ---------------------------------------------------------------------------


class TestFlowRuleRegistry:
    def test_flow_rules_are_registered(self):
        registered = {cls.code for cls in ALL_RULES}
        assert {"LSVD010", "LSVD011", "LSVD012", "LSVD013"} <= registered

    def test_codes_and_names(self):
        assert SettlementLeakRule.code == "LSVD010"
        assert DurabilityOrderingRule.code == "LSVD011"
        assert RecoveryMutationOrderRule.code == "LSVD012"
        assert AsyncCancellationRule.code == "LSVD013"
        names = {
            SettlementLeakRule.name,
            DurabilityOrderingRule.name,
            RecoveryMutationOrderRule.name,
            AsyncCancellationRule.name,
        }
        assert len(names) == 4


# ---------------------------------------------------------------------------
# LSVD014 barrier-coalescing-safety
# ---------------------------------------------------------------------------


class TestBarrierCoalescing:
    KEY = "runtime/lsvd.py"

    BAD_FIRE_AND_FORGET = """
        def _group_commit_worker(self):
            while True:
                first = yield self._barrier_q.get()
                group = [first]
                group.extend(self._barrier_q.drain())
                self.machine.ssd.flush()
                for waiter in group:
                    waiter.succeed()
    """

    def test_unyielded_flush_is_flagged(self):
        # in a coroutine a bare ssd.flush() returns an Event nobody waits
        # on: the barriers settle before the device flushed anything
        diags = only(lint_src(self.KEY, self.BAD_FIRE_AND_FORGET), "LSVD014")
        assert len(diags) == 1
        assert "yielded/awaited" in diags[0].message

    def test_settle_without_any_flush_is_flagged(self):
        src = """
            def barrier(self, done):
                self.barriers += 1  # lint: disable=LSVD007 -- fixture
                done.succeed()
        """
        diags = only(lint_src(self.KEY, src), "LSVD014")
        assert len(diags) == 1

    def test_flush_on_only_one_branch_is_flagged(self):
        src = """
            def _serial_barrier(self, done):
                yield from self.machine.cpu_work(self.params.barrier_cpu)
                if self._dirty:
                    yield self.machine.ssd.flush()
                done.succeed()
        """
        diags = only(lint_src(self.KEY, src), "LSVD014")
        assert len(diags) == 1

    def test_yielded_flush_before_group_settle_is_clean(self):
        src = """
            def _group_commit_worker(self):
                while True:
                    first = yield self._barrier_q.get()
                    group = [first]
                    group.extend(self._barrier_q.drain())
                    yield self.machine.ssd.flush()
                    for waiter in group:
                        waiter.succeed()
        """
        assert only(lint_src(self.KEY, src), "LSVD014") == []

    def test_plain_function_flush_call_is_clean(self):
        src = """
            def barrier(self, done):
                self.image.flush()
                done.succeed()
        """
        assert only(lint_src(self.KEY, src), "LSVD014") == []

    def test_non_barrier_functions_are_not_checked(self):
        # writes are acked after the SSD log write, not after a flush
        src = """
            def _write(self, op, done):
                yield self.machine.ssd.write(0, op.length)
                done.succeed()
        """
        assert only(lint_src(self.KEY, src), "LSVD014") == []

    def test_gate_release_is_not_a_settlement_site(self):
        # waking gated *writers* is not acknowledging a barrier caller
        src = """
            def _serial_barrier(self, done):
                yield self.machine.ssd.flush()
                done.succeed()
                while self._gate_waiters:
                    self._gate_waiters.popleft().succeed()
        """
        assert only(lint_src(self.KEY, src), "LSVD014") == []

    def test_suppressed_with_disable_comment(self):
        src = """
            def barrier(self, done):
                done.succeed()  # lint: disable=LSVD014 -- fixture
        """
        assert only(lint_src(self.KEY, src), "LSVD014") == []

    def test_scoped_allowlist_exempts_one_function(self):
        config = replace(
            LintConfig(),
            barrier_allow=("runtime/lsvd.py::_group_commit_worker",),
        )
        diags = only(
            lint_src(self.KEY, self.BAD_FIRE_AND_FORGET, config), "LSVD014"
        )
        assert diags == []

    def test_outside_barrier_modules_is_not_checked(self):
        diags = only(
            lint_src("analysis/report.py", self.BAD_FIRE_AND_FORGET),
            "LSVD014",
        )
        assert diags == []

    def test_registered_with_metadata(self):
        from repro.lint.rules.barrier_commit import BarrierCoalescingRule

        assert BarrierCoalescingRule.code == "LSVD014"
        assert BarrierCoalescingRule.name == "barrier-coalescing-safety"
        assert BarrierCoalescingRule in ALL_RULES
        assert "§3.2" in explain_rules(["LSVD014"])


# ---------------------------------------------------------------------------
# LSVD015 span-hygiene
# ---------------------------------------------------------------------------


class TestSpanHygiene:
    # core/block_store.py sits in the span dirs and is exempt from the
    # LSVD001 layering rule, so fixtures only exercise LSVD015
    KEY = "core/block_store.py"

    BAD = """
        def put_one(self, span, shard, name, data):
            stage = span.begin("shard_put")
            handle = shard.put(name, data)
            self.settle(handle)
    """

    def test_leaked_span_is_flagged(self):
        diags = only(lint_src(self.KEY, self.BAD), "LSVD015")
        assert len(diags) == 1
        assert diags[0].line == 3
        assert "stage" in diags[0].message

    def test_discarded_begin_is_flagged(self):
        src = """
            def mark(self, span):
                span.begin("wc_append")
        """
        diags = only(lint_src(self.KEY, src), "LSVD015")
        assert len(diags) == 1
        assert "discarded" in diags[0].message

    def test_ended_span_is_clean(self):
        src = """
            def put_one(self, span, shard, name, data):
                stage = span.begin("shard_put")
                handle = shard.put(name, data)
                stage.end()
                self.settle(handle)
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_adopted_span_is_clean(self):
        # passing the handle to a callee adopts it: the callee now owns
        # closing the stage (`store.put(name, data, span=stage)`)
        src = """
            def put_one(self, span, store, name, data):
                stage = span.begin("backend_put")
                handle = store.put(name, data, span=stage)
                self.settle(handle)
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_returned_span_is_clean(self):
        src = """
            def open_stage(self, span):
                return span.begin("barrier_queue", kind="queue")
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_root_from_recorder_is_tracked(self):
        src = """
            def write(self, data):
                span = self.obs.spans.root("write", bytes=len(data))
                self.wc.append(data)
        """
        diags = only(lint_src(self.KEY, src), "LSVD015")
        assert len(diags) == 1
        assert "span" in diags[0].message

    def test_early_return_leak_is_flagged(self):
        src = """
            def put_one(self, span, name, data):
                stage = span.begin("wc_append")
                if not data:
                    return None
                stage.end()
        """
        diags = only(lint_src(self.KEY, src), "LSVD015")
        assert len(diags) == 1
        assert diags[0].line == 3

    def test_ended_on_both_exits_is_clean(self):
        src = """
            def select(self, span, pool):
                stage = span.begin("gc_select")
                if not pool:
                    stage.end(victims=0)
                    return None
                stage.end(victims=len(pool))
                return pool
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_raising_path_is_forgiven(self):
        src = """
            def put_one(self, span, name, data):
                stage = span.begin("wc_append")
                if not data:
                    raise ValueError("empty write")
                stage.end()
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_overwrite_loses_the_first_span(self):
        src = """
            def two_stages(self, span):
                stage = span.begin("first")
                stage = span.begin("second")
                stage.end()
        """
        diags = only(lint_src(self.KEY, src), "LSVD015")
        assert len(diags) == 1
        assert diags[0].line == 3

    def test_unrelated_receiver_is_ignored(self):
        src = """
            def walk(self, tree):
                node = tree.begin("iteration")
                return None
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_suppression_comment_silences(self):
        src = """
            def put_one(self, span, shard, name, data):
                stage = span.begin("shard_put")  # lint: disable=LSVD015 -- ended by worker
                self.settle(shard.put(name, data))
        """
        assert only(lint_src(self.KEY, src), "LSVD015") == []

    def test_allowlisted_function_is_exempt(self):
        config = replace(
            LintConfig(), span_allow=("core/block_store.py::put_one",)
        )
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD015") == []

    def test_allowlisted_module_is_exempt(self):
        config = replace(LintConfig(), span_allow=("core/block_store.py",))
        assert only(lint_src(self.KEY, self.BAD, config), "LSVD015") == []

    def test_outside_span_dirs_is_exempt(self):
        assert only(lint_src("analysis/report.py", self.BAD), "LSVD015") == []

    def test_bare_files_are_always_in_scope(self):
        # benchmarks/examples live outside any repro package; span leaks
        # there corrupt the attributions the benchmark gates check
        runner = LintRunner([cls() for cls in ALL_RULES], LintConfig())
        diags = runner.check_source(
            "span_smoke.py", textwrap.dedent(self.BAD)
        )
        assert len(only(diags, "LSVD015")) == 1

    def test_registered_with_metadata(self):
        from repro.lint.rules.span_hygiene import SpanHygieneRule

        assert SpanHygieneRule.code == "LSVD015"
        assert SpanHygieneRule.name == "span-hygiene"
        assert SpanHygieneRule in ALL_RULES
        assert "§4.4" in explain_rules(["LSVD015"])


# ---------------------------------------------------------------------------
# LSVD016 tenant-isolation
# ---------------------------------------------------------------------------


class TestTenantIsolation:
    # core/volume.py is one of the fleet entry layers (fleet_modules), so
    # both the confinement and the admission checks apply there
    KEY = "core/volume.py"

    CONSTRUCTION = """
        def setup(self):
            self.bucket = QoSTokenBucket(500.0)
    """

    UNGUARDED = """
        def write(self, offset, data):
            span = self.obs.spans.root("write")
            self.wc.append([(offset, data)])
    """

    GUARDED = """
        def write(self, offset, data):
            if self.qos is not None:
                self.qos.admit("write", len(data))
            self.wc.append([(offset, data)])
    """

    def test_bucket_construction_outside_fleet_is_flagged(self):
        diags = only(lint_src(self.KEY, self.CONSTRUCTION), "LSVD016")
        assert len(diags) == 1
        assert "QoSTokenBucket" in diags[0].message

    def test_every_enforcement_class_is_confined(self):
        for cls in ("TenantThrottle", "ThrottleSet", "CoreAdmission"):
            src = f"""
                def setup(self):
                    self.t = {cls}("acme")
            """
            diags = only(lint_src(self.KEY, src), "LSVD016")
            assert len(diags) == 1, cls

    def test_qos_limits_are_policy_not_enforcement(self):
        src = """
            def setup(self):
                self.limits = QoSLimits(iops=500.0)
        """
        assert only(lint_src(self.KEY, src), "LSVD016") == []

    def test_cross_tenant_state_outside_fleet_is_flagged(self):
        src = """
            def bypass(self, tenant):
                return self._throttles[tenant]
        """
        diags = only(lint_src(self.KEY, src), "LSVD016")
        assert len(diags) == 1
        assert "_throttles" in diags[0].message

    def test_fleet_package_is_exempt_from_confinement(self):
        assert only(lint_src("fleet/qos.py", self.CONSTRUCTION), "LSVD016") == []

    def test_unguarded_forward_in_entry_point_is_flagged(self):
        diags = only(lint_src(self.KEY, self.UNGUARDED), "LSVD016")
        assert len(diags) == 1
        assert diags[0].line == 4
        assert "wc.append()" in diags[0].message

    def test_admission_guarded_forward_is_clean(self):
        assert only(lint_src(self.KEY, self.GUARDED), "LSVD016") == []

    def test_unconditional_admit_is_clean(self):
        src = """
            def write(self, offset, data):
                self.qos.admit("write", len(data))
                self.wc.append([(offset, data)])
        """
        assert only(lint_src(self.KEY, src), "LSVD016") == []

    def test_no_tenant_branch_is_evidence(self):
        # the true side of `qos is None` proves there is nothing to
        # charge; only the other path needs an admit call
        src = """
            def write(self, offset, data):
                if self.qos is None:
                    self.wc.append([(offset, data)])
                else:
                    self.qos.admit("write", len(data))
                    self.wc.append([(offset, data)])
        """
        assert only(lint_src(self.KEY, src), "LSVD016") == []

    def test_partial_path_violation_is_flagged(self):
        # admission happens on one branch but the forward is reachable
        # from the un-admitted branch too
        src = """
            def write(self, offset, data):
                if self.fast_path:
                    pass
                else:
                    self.qos.admit("write", len(data))
                self.wc.append([(offset, data)])
        """
        diags = only(lint_src(self.KEY, src), "LSVD016")
        assert len(diags) == 1
        assert diags[0].line == 7

    def test_non_entry_function_is_ignored(self):
        src = """
            def destage_batch(self, batch):
                self.wc.append(batch)
        """
        assert only(lint_src(self.KEY, src), "LSVD016") == []

    def test_unrelated_receiver_is_ignored(self):
        src = """
            def write(self, offset, data):
                self.pending.append((offset, data))
        """
        assert only(lint_src(self.KEY, src), "LSVD016") == []

    def test_outside_fleet_modules_no_admission_check(self):
        # modules outside the entry layers only get the confinement
        # check; their writes do not need admission evidence
        assert only(lint_src("devices/image.py", self.UNGUARDED), "LSVD016") == []

    def test_suppression_comment_silences(self):
        src = """
            def write(self, offset, data):
                self.wc.append([(offset, data)])  # lint: disable=LSVD016 -- admitted by caller
        """
        assert only(lint_src(self.KEY, src), "LSVD016") == []

    def test_allowlisted_function_is_exempt(self):
        config = replace(
            LintConfig(), fleet_admission_allow=("core/volume.py::write",)
        )
        assert only(lint_src(self.KEY, self.UNGUARDED, config), "LSVD016") == []

    def test_fleet_allow_extends_confinement_scope(self):
        config = replace(
            LintConfig(), fleet_allow=("fleet/", "core/volume.py")
        )
        assert only(lint_src(self.KEY, self.CONSTRUCTION, config), "LSVD016") == []

    def test_registered_with_metadata(self):
        from repro.lint.rules.tenant_isolation import TenantIsolationRule

        assert TenantIsolationRule.code == "LSVD016"
        assert TenantIsolationRule.name == "tenant-isolation"
        assert TenantIsolationRule in ALL_RULES
        assert "§4.5" in explain_rules(["LSVD016"])


# ---------------------------------------------------------------------------
# LSVD017 placement-confinement
# ---------------------------------------------------------------------------


class TestPlacementConfinement:
    # core/gc.py consumes placement (placement_modules) but does not own
    # it, so both the confinement and the relocation-flow checks apply
    KEY = "core/gc.py"

    CONSTRUCTION = """
        def setup(self):
            self.policy = SepBitPolicy()
    """

    UNGUARDED = """
        def requeue(self, batch, pieces, temp):
            batch.seal_gc_batch(7, b"u", pieces, last_record_seq=0, temp=temp)
    """

    GUARDED = """
        def execute(self, plan, batch):
            for temp, chunk in plan_relocation(plan.pieces, self.policy, 65536):
                batch.seal_gc_batch(7, b"u", chunk, last_record_seq=0, temp=temp)
    """

    def test_policy_construction_outside_placement_is_flagged(self):
        diags = only(lint_src(self.KEY, self.CONSTRUCTION), "LSVD017")
        assert len(diags) == 1
        assert "SepBitPolicy" in diags[0].message

    def test_both_policy_classes_are_confined(self):
        for cls in ("SepBitPolicy", "SingleClassPolicy"):
            src = f"""
                def setup(self):
                    self.policy = {cls}()
            """
            assert len(only(lint_src(self.KEY, src), "LSVD017")) == 1, cls

    def test_make_policy_is_blessed_everywhere(self):
        src = """
            def setup(self, config):
                self.policy = make_policy(config)
        """
        assert only(lint_src(self.KEY, src), "LSVD017") == []

    def test_classifier_state_outside_placement_is_flagged(self):
        src = """
            def peek(self, policy, page):
                return policy._page_temp[page]
        """
        diags = only(lint_src(self.KEY, src), "LSVD017")
        assert len(diags) == 1
        assert "_page_temp" in diags[0].message

    def test_temp_arithmetic_outside_placement_is_flagged(self):
        src = """
            def demote(self, temp):
                return TEMP_HOT + 1
        """
        diags = only(lint_src(self.KEY, src), "LSVD017")
        assert len(diags) == 1
        assert "TEMP_HOT" in diags[0].message

    def test_temp_comparison_and_indexing_are_reads_not_classification(self):
        src = """
            def report(self, temp, rows):
                if temp == TEMP_COLD:
                    return rows[TEMP_COLD]
                return [0] * NUM_TEMPS
        """
        assert only(lint_src(self.KEY, src), "LSVD017") == []

    def test_placement_module_is_exempt(self):
        diags = lint_src("core/placement.py", self.CONSTRUCTION)
        assert only(diags, "LSVD017") == []

    def test_unclassified_relocation_write_is_flagged(self):
        diags = only(lint_src(self.KEY, self.UNGUARDED), "LSVD017")
        assert len(diags) == 1
        assert "seal_gc_batch()" in diags[0].message
        assert "classifier" in diags[0].message

    def test_relocation_through_planner_is_clean(self):
        assert only(lint_src(self.KEY, self.GUARDED), "LSVD017") == []

    def test_gc_true_store_requires_classifier_in_simulator(self):
        src = """
            def shortcut(self, pages, temp):
                self._store_object(pages, gc=True, temp=temp)
        """
        diags = only(lint_src("gcsim/simulator.py", src), "LSVD017")
        assert len(diags) == 1

    def test_destage_store_is_not_a_relocation_write(self):
        # gc=False is the on_write-classified destage path
        src = """
            def _flush(self, pages, temp):
                self._store_object(pages, gc=False, temp=temp)
        """
        assert only(lint_src("gcsim/simulator.py", src), "LSVD017") == []

    def test_flow_check_only_runs_in_placement_modules(self):
        assert only(lint_src("analysis/report.py", self.UNGUARDED), "LSVD017") == []

    def test_flow_allowlist_exempts_helper(self):
        config = replace(
            LintConfig(), placement_flow_allow=("core/gc.py::requeue",)
        )
        src = self.UNGUARDED
        assert only(lint_src(self.KEY, src, config), "LSVD017") == []

    def test_suppression_comment_silences(self):
        src = """
            def setup(self):
                self.policy = SepBitPolicy()  # lint: disable=LSVD017 -- reviewed
        """
        assert only(lint_src(self.KEY, src), "LSVD017") == []
