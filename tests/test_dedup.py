"""Tests for block de-duplication (§6.3)."""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.dedup import DedupReport, dedupe_volume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20
BLOCK = 4096


def make_volume(store, name, size=4 * MiB):
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=16)
    return LSVDVolume.create(store, name, size, DiskImage(2 * MiB), cfg), cfg


def test_dedupe_identical_blocks_stored_once():
    store = InMemoryObjectStore()
    src, cfg = make_volume(store, "src")
    # 64 blocks, only 4 distinct patterns
    for i in range(64):
        src.write(i * BLOCK, bytes([i % 4 + 1]) * BLOCK)
    src.drain()
    dst, _ = make_volume(store, "dst")
    report = dedupe_volume(src, dst)
    assert report.blocks_stored == 4
    assert report.blocks_duplicate == 60
    assert report.savings_ratio > 0.9
    # reads are unaffected
    for i in range(64):
        assert dst.read(i * BLOCK, BLOCK) == bytes([i % 4 + 1]) * BLOCK


def test_dedupe_zero_blocks_cost_nothing():
    store = InMemoryObjectStore()
    src, cfg = make_volume(store, "src")
    src.write(0, b"\x01" * BLOCK)  # one real block in a sea of zeros
    src.drain()
    dst, _ = make_volume(store, "dst")
    report = dedupe_volume(src, dst)
    assert report.blocks_stored == 1
    assert report.blocks_zero == report.blocks_scanned - 1
    assert dst.read(0, BLOCK) == b"\x01" * BLOCK
    assert dst.read(10 * BLOCK, BLOCK) == b"\x00" * BLOCK


def test_dedupe_backend_footprint_shrinks():
    store = InMemoryObjectStore()
    src, cfg = make_volume(store, "src")
    pattern = bytes(range(256)) * 16
    for i in range(256):
        src.write(i * BLOCK, pattern)  # same 4K everywhere
    src.drain()
    dst, _ = make_volume(store, "dst")
    dedupe_volume(src, dst)
    assert store.total_bytes("dst.") < store.total_bytes("src.") / 10


def test_dedupe_survives_recovery():
    store = InMemoryObjectStore()
    src, cfg = make_volume(store, "src")
    rng = random.Random(1)
    blocks = [bytes([rng.randrange(1, 8)]) * BLOCK for _ in range(128)]
    for i, block in enumerate(blocks):
        src.write(i * BLOCK, block)
    src.drain()
    dst, _ = make_volume(store, "dst")
    dedupe_volume(src, dst)
    dst.close()
    reopened = LSVDVolume.open(store, "dst", DiskImage(2 * MiB), cfg, cache_lost=True)
    for i, block in enumerate(blocks):
        assert reopened.read(i * BLOCK, BLOCK) == block


def test_dedupe_then_overwrite_diverges_cleanly():
    """Writing to one aliased LBA must not affect its siblings."""
    store = InMemoryObjectStore()
    src, cfg = make_volume(store, "src")
    for i in range(16):
        src.write(i * BLOCK, b"\x07" * BLOCK)
    src.drain()
    dst, _ = make_volume(store, "dst")
    dedupe_volume(src, dst)
    dst.write(3 * BLOCK, b"\x09" * BLOCK)
    assert dst.read(3 * BLOCK, BLOCK) == b"\x09" * BLOCK
    assert dst.read(4 * BLOCK, BLOCK) == b"\x07" * BLOCK


def test_report_math():
    r = DedupReport(blocks_scanned=100, blocks_zero=50, blocks_duplicate=30, blocks_stored=20)
    assert r.logical_bytes == 100 * BLOCK
    assert r.stored_bytes == 20 * BLOCK
    assert r.savings_ratio == pytest.approx(0.8)
