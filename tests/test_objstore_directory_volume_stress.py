"""Stress: many volumes sharing one object store namespace."""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import VolumeExistsError
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def test_many_volumes_share_a_store_without_interference():
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    volumes = {}
    for n in range(6):
        vol = LSVDVolume.create(store, f"tenant{n}", 8 * MiB, DiskImage(2 * MiB), cfg)
        volumes[n] = vol
    rng = random.Random(0)
    for i in range(600):
        n = rng.randrange(6)
        volumes[n].write(
            rng.randrange(0, 2048) * 4096, bytes([n * 40 + i % 40 + 1]) * 4096
        )
    for vol in volumes.values():
        vol.drain()
    # each tenant's namespace is isolated
    for n, vol in volumes.items():
        names = store.list(f"tenant{n}.")
        assert names
        for other in range(6):
            if other != n:
                assert not any(
                    name.startswith(f"tenant{other}.") for name in names
                )
    # each volume still round-trips its newest data
    for n, vol in volumes.items():
        lba = 100 * 4096
        vol.write(lba, bytes([n + 1]) * 4096)
        assert vol.read(lba, 4096) == bytes([n + 1]) * 4096


def test_similar_prefix_names_do_not_collide():
    """'vol' and 'vol2' and 'vol.2' must never see each other's objects."""
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024)
    a = LSVDVolume.create(store, "vol", 8 * MiB, DiskImage(2 * MiB), cfg)
    b = LSVDVolume.create(store, "vol2", 8 * MiB, DiskImage(2 * MiB), cfg)
    a.write(0, b"A" * 4096)
    b.write(0, b"B" * 4096)
    a.drain()
    b.drain()
    a2 = LSVDVolume.open(store, "vol", DiskImage(2 * MiB), cfg, cache_lost=True)
    b2 = LSVDVolume.open(store, "vol2", DiskImage(2 * MiB), cfg, cache_lost=True)
    assert a2.read(0, 4096) == b"A" * 4096
    assert b2.read(0, 4096) == b"B" * 4096


def test_create_collision_detected_even_without_super():
    """Leftover stream objects (no superblock) still block creation."""
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024)
    vol = LSVDVolume.create(store, "vd", 8 * MiB, DiskImage(2 * MiB), cfg)
    vol.drain()
    store.delete("vd.super")
    with pytest.raises(VolumeExistsError):
        LSVDVolume.create(store, "vd", 8 * MiB, DiskImage(2 * MiB), cfg)
