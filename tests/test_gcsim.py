"""Tests for the fast batching + GC trace simulator (Table 5)."""


import pytest

from repro.gcsim import GCSimulator
from repro.workloads import TRACE_PRESETS, CloudPhysicsTrace

MiB = 1 << 20
PAGE = 4096


def test_no_overwrite_no_gc_waf_one():
    sim = GCSimulator(volume_size=64 * MiB, batch_size=1 * MiB)
    for i in range(64 * MiB // PAGE):
        sim.write(i * PAGE, PAGE)
    rep = sim.finish()
    assert rep.waf == pytest.approx(1.0)
    assert rep.merge_ratio == 0.0
    assert rep.gc_bytes == 0


def test_sequential_fill_single_extent_per_batchless_runs():
    sim = GCSimulator(volume_size=16 * MiB, batch_size=1 * MiB)
    for i in range(16 * MiB // PAGE):
        sim.write(i * PAGE, PAGE)
    rep = sim.finish()
    # sequential batches land contiguously: extents = number of objects
    assert rep.extent_count == rep.objects_written


def test_intra_batch_merge_counts():
    sim = GCSimulator(volume_size=16 * MiB, batch_size=1 * MiB, merge=True)
    for _ in range(2):
        for i in range(128):  # same 512 KiB twice within one batch
            sim.write(i * PAGE, PAGE)
    rep = sim.finish()
    assert rep.merged_bytes == 128 * PAGE
    assert rep.merge_ratio == pytest.approx(0.5)


def test_merge_disabled_counts_nothing():
    sim = GCSimulator(volume_size=16 * MiB, batch_size=1 * MiB, merge=False)
    for _ in range(2):
        for i in range(128):
            sim.write(i * PAGE, PAGE)
    rep = sim.finish()
    assert rep.merged_bytes == 0
    assert rep.backend_bytes == 256 * PAGE


def test_merge_never_crosses_batches():
    sim = GCSimulator(volume_size=16 * MiB, batch_size=512 * 1024, merge=True)
    for _ in range(2):  # exactly one batch each pass
        for i in range(128):
            sim.write(i * PAGE, PAGE)
    rep = sim.finish()
    assert rep.merged_bytes == 0  # overwrite lands in the *next* batch


def test_gc_triggers_and_bounds_garbage():
    import random

    sim = GCSimulator(volume_size=16 * MiB, batch_size=1 * MiB, gc_low=0.7, gc_high=0.75)
    rng = random.Random(2)
    # fill, then random scattered overwrites: diffuse garbage the GC must
    # clean by copying live data
    for i in range(16 * MiB // PAGE):
        sim.write(i * PAGE, PAGE)
    for _ in range(30_000):
        sim.write(rng.randrange(0, 16 * MiB // PAGE) * PAGE, PAGE)
    rep = sim.finish()
    assert sim.utilization() >= 0.69
    assert rep.gc_bytes > 0
    assert rep.objects_deleted > 0
    assert 1.0 < rep.waf < 4.0


def test_gc_preserves_mapping_sanity():
    sim = GCSimulator(volume_size=8 * MiB, batch_size=512 * 1024)
    import random

    rng = random.Random(1)
    for _ in range(20_000):
        sim.write(rng.randrange(0, 8 * MiB // PAGE) * PAGE, PAGE)
    rep = sim.finish()
    # every mapped page's object must exist with consistent accounting
    import numpy as np

    mapped = sim.page_obj[sim.page_obj >= 0]
    for obj in np.unique(mapped):
        assert int(obj) in sim.obj_size
    live_recount = {int(o): int((sim.page_obj == o).sum()) for o in np.unique(mapped)}
    for obj, live in live_recount.items():
        assert sim.obj_live[obj] == live


def test_hole_plugging_reduces_extents():
    base = dict(volume_size=32 * MiB, batch_size=1 * MiB, gc_low=0.7, gc_high=0.75)
    import random

    def run(defrag):
        sim = GCSimulator(**base, defrag_hole_pages=defrag)
        rng = random.Random(5)
        # fill, then scattered single-page overwrites to fragment the map
        for i in range(32 * MiB // PAGE):
            sim.write(i * PAGE, PAGE)
        for _ in range(60_000):
            sim.write(rng.randrange(0, 32 * MiB // PAGE) * PAGE, PAGE)
        return sim.finish()

    plain = run(0)
    plugged = run(2)
    assert plugged.holes_plugged > 0
    assert plugged.extent_count < plain.extent_count
    # the extra copies must stay bounded (the paper reports negligible
    # cost on real traces; this synthetic workload is far more hostile)
    assert plugged.waf < plain.waf * 2.0


def test_unaligned_write_rounds_to_pages():
    sim = GCSimulator(volume_size=1 * MiB, batch_size=64 * 1024)
    sim.write(100, 200)  # within one page
    rep = sim.finish()
    assert rep.client_bytes == PAGE


def test_rejects_unaligned_volume():
    with pytest.raises(ValueError):
        GCSimulator(volume_size=1000)


def test_table5_regime_waf_ordering():
    """Coarse Table 5 shape: hot-set traces (w10/w31/w05) get WAF near 1;
    spread-out low-volume traces (w66/w59) get the highest WAF."""

    def run(name):
        trace = CloudPhysicsTrace(TRACE_PRESETS[name], scale=1 / 256, seed=1)
        sim = GCSimulator(volume_size=trace.volume_size, batch_size=8 * MiB)
        sim.replay(trace.writes())
        return sim.finish()

    low = run("w31")
    high = run("w66")
    assert low.waf < high.waf
    assert low.waf < 1.35


def test_table5_merge_ratio_shape():
    """w41 (paper merge 0.71) must out-merge w10 (paper merge 0.01)."""

    def merge_of(name):
        trace = CloudPhysicsTrace(TRACE_PRESETS[name], scale=1 / 256, seed=2)
        sim = GCSimulator(volume_size=trace.volume_size, batch_size=32 * MiB)
        sim.replay(trace.writes())
        return sim.finish().merge_ratio

    assert merge_of("w41") > merge_of("w10") + 0.2
