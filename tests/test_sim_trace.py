"""Tests for the simulator tracing helper."""

from repro.sim import Simulator
from repro.sim.trace import Tracer


def test_tracer_records_with_sim_time():
    sim = Simulator()
    tracer = Tracer(sim)

    def proc():
        tracer.record("start")
        yield sim.timeout(2.0)
        tracer.record("end", {"k": 1})

    sim.process(proc())
    sim.run()
    assert tracer.events[0] == (0.0, "start", None)
    assert tracer.events[1] == (2.0, "end", {"k": 1})


def test_tracer_counts_and_rate():
    sim = Simulator()
    tracer = Tracer(sim)

    def ticker():
        for _ in range(10):
            yield sim.timeout(1.0)
            tracer.record("tick")

    sim.process(ticker())
    sim.run()
    assert tracer.counts()["tick"] == 10
    # half-open window: the tick at exactly t=10 is excluded
    assert tracer.rate("tick", window=(0.0, 10.0)) == 0.9
    assert tracer.rate("tick", window=(0.5, 10.5)) == 1.0


def test_tracer_between_and_timeline():
    sim = Simulator()
    tracer = Tracer(sim)

    def ticker():
        for _ in range(6):
            yield sim.timeout(0.5)
            tracer.record("t")

    sim.process(ticker())
    sim.run()
    assert len(tracer.between(1.0, 2.1)) == 3
    timeline = tracer.timeline("t", bucket=1.0)
    assert sum(n for _t, n in timeline) == 6


def test_tracer_drop_limit():
    sim = Simulator()
    tracer = Tracer(sim, max_events=3)
    for _ in range(5):
        tracer.record("x")
    assert len(tracer.events) == 3
    assert tracer.dropped == 2


def test_tracer_rate_empty():
    sim = Simulator()
    tracer = Tracer(sim)
    assert tracer.rate("none") == 0.0
    assert tracer.rate("none", window=(1.0, 1.0)) == 0.0
