"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_ordering():
    sim = Simulator()
    log = []

    def worker(name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(worker("late", 2.0))
    sim.process(worker("early", 1.0))
    sim.run()
    assert log == [(1.0, "early"), (2.0, "late")]


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["payload"]


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    log = []

    def proc(tag):
        yield sim.timeout(0.0)
        log.append(tag)

    sim.process(proc("a"))
    sim.process(proc("b"))
    sim.run()
    assert log == ["a", "b"]
    assert sim.now == 0.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer(results):
        value = yield sim.process(inner())
        results.append(value)

    results = []
    sim.process(outer(results))
    sim.run()
    assert results == [42]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(3.0, "open")]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_event_value_unavailable_until_triggered():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    ev.succeed(7)
    assert ev.value == 7


def test_process_exception_fails_process_event():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("broken")

    proc = sim.process(bad())
    sim.run()
    assert proc.triggered
    assert not proc.ok
    assert isinstance(proc.value, ValueError)


def test_strict_mode_reraises():
    sim = Simulator(strict=True)

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("broken")

    sim.process(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 17

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc():
        values = yield AllOf(sim, [sim.timeout(1, "a"), sim.timeout(3, "b")])
        results.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert results == [(3.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    results = []

    def proc():
        values = yield AllOf(sim, [])
        results.append(values)

    sim.process(proc())
    sim.run()
    assert results == [[]]


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc():
        event, value = yield AnyOf(sim, [sim.timeout(5, "slow"), sim.timeout(1, "fast")])
        results.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert results == [(1.0, "fast")]


def test_interrupt_is_catchable():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()


def test_run_until_limits_clock():
    sim = Simulator()
    log = []

    def ticker():
        while True:
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.process(ticker())
    sim.run(until=5.5)
    assert log == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert sim.now == 5.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return "done"

    result = sim.run_until_event(sim.process(proc()))
    assert result == "done"
    assert sim.now == 2.0


def test_run_until_event_raises_if_queue_drains():
    sim = Simulator()
    orphan = sim.event()
    with pytest.raises(SimulationError):
        sim.run_until_event(orphan)


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]
