"""Recovery edge cases: stranded objects, checkpoint loss, torn logs."""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.block_store import BlockStore
from repro.core.errors import VolumeNotFoundError
from repro.core.log import object_name
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=8)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_volume(store=None):
    store = store if store is not None else InMemoryObjectStore()
    image = DiskImage(2 * MiB)
    cfg = small_config()
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    return store, image, cfg, vol


def test_open_nonexistent_volume_raises():
    with pytest.raises(VolumeNotFoundError):
        LSVDVolume.open(
            InMemoryObjectStore(), "ghost", DiskImage(2 * MiB), small_config()
        )


def test_recovery_after_every_object_count():
    """Recover at many points during a long write history; every mount
    must see exactly the writes it should."""
    store, image, cfg, vol = make_volume()
    rng = random.Random(1)
    model = {}
    for i in range(200):
        lba = rng.randrange(0, 1024) * 4096
        data = bytes([i % 255 + 1]) * 4096
        vol.write(lba, data)
        model[lba] = data
        if i % 50 == 49:
            vol.flush()
            image.crash(rng=rng, survive_probability=1.0, allow_torn=False)
            vol = LSVDVolume.open(store, "vd", image, cfg)
            for check_lba, expected in list(model.items())[-20:]:
                assert vol.read(check_lba, 4096) == expected


def test_checkpoint_interval_bounds_replay():
    """More frequent checkpoints mean fewer objects replayed at mount."""
    store = InMemoryObjectStore()
    cfg = small_config(checkpoint_interval=2)
    image = DiskImage(2 * MiB)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    bs, state = BlockStore.open(store, "vd", cfg)
    # the consecutive replay window after the newest checkpoint is short
    assert state.last_seq - bs.last_ckpt_seq <= 4


def test_stranded_checkpoint_falls_back_to_older_one():
    """If the newest checkpoint PUT was lost with a hole before it,
    recovery must use the previous checkpoint."""
    store, image, cfg, vol = make_volume()
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    # force a checkpoint so at least two exist
    vol.bs.write_checkpoint()
    seqs = sorted(
        int(n.rsplit(".", 1)[1])
        for n in store.list("vd.")
        if n.rsplit(".", 1)[1].isdigit()
    )
    # delete the newest data/checkpoint object to simulate a lost PUT,
    # leaving the superblock pointing at a missing checkpoint
    last = seqs[-1]
    store.delete(object_name("vd", last))
    fresh = DiskImage(2 * MiB)
    vol2 = LSVDVolume.open(store, "vd", fresh, cfg, cache_lost=True)
    for i in range(64):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_recovery_deletes_only_past_the_hole():
    inner = InMemoryObjectStore()
    store = UnsettledObjectStore(inner)
    cfg = small_config(checkpoint_interval=1000)
    # the cache log must hold all 80 writes while the PUTs stay unsettled
    image = DiskImage(8 * MiB)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    store.settle_all()
    for i in range(80):  # five 64K batches
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()
    handles = sorted(store._pending)
    assert len(handles) == 5
    # settle 1,2 and 4,5 - object 3 is lost
    for idx in (0, 1, 3, 4):
        store.settle(handles[idx])
        vol.settle_put(handles[idx])
    store.crash()
    image.lose()
    fresh = DiskImage(2 * MiB)
    vol2 = LSVDVolume.open(inner, "vd", fresh, cfg, cache_lost=True)
    # the prefix covers batches 1-2 (32 writes); stranded 4-5 deleted
    for i in range(32):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096
    for i in range(48, 80):
        assert vol2.read(i * 4096, 4096) == b"\x00" * 4096


def test_corrupt_cache_checkpoints_still_mounts_backend():
    """Total cache corruption degrades to the backend prefix."""
    store, image, cfg, vol = make_volume()
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    # scribble over the whole cache region
    image.write(0, b"\xde\xad" * (256 * 1024))
    image.flush()
    vol2 = LSVDVolume.open(store, "vd", image, cfg, cache_lost=True)
    for i in range(64):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_clone_of_recovered_volume():
    store, image, cfg, vol = make_volume()
    for i in range(32):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()
    image.crash(rng=random.Random(9), survive_probability=1.0, allow_torn=False)
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    vol2.drain()
    clone = LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)
    for i in range(32):
        assert clone.read(i * 4096, 4096) == bytes([i + 1]) * 4096
