"""End-to-end tests for LSVDVolume: I/O, recovery, snapshots, clones, GC."""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import LSVDError
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=8)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_volume(size=16 * MiB, cache=4 * MiB, store=None, **kw):
    store = store if store is not None else InMemoryObjectStore()
    image = DiskImage(cache, name="cache")
    vol = LSVDVolume.create(store, "vd", size, image, small_config(**kw))
    return store, image, vol


def test_write_read_roundtrip():
    _, _, vol = make_volume()
    vol.write(0, b"hello sector!!!!" * 32)
    assert vol.read(0, 512) == b"hello sector!!!!" * 32


def test_unwritten_reads_zero():
    _, _, vol = make_volume()
    assert vol.read(1 * MiB, 4096) == b"\x00" * 4096


def test_misaligned_io_rejected():
    _, _, vol = make_volume()
    with pytest.raises(ValueError):
        vol.write(100, b"x" * 512)
    with pytest.raises(ValueError):
        vol.read(0, 100)
    with pytest.raises(ValueError):
        vol.write(vol.size - 512, b"x" * 1024)


def test_overwrite_returns_newest():
    _, _, vol = make_volume()
    vol.write(4096, b"1" * 4096)
    vol.write(4096, b"2" * 4096)
    assert vol.read(4096, 4096) == b"2" * 4096


def test_read_spanning_cache_and_backend():
    store, _, vol = make_volume()
    # push old data through to the backend
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    # overwrite a strip: newest in write cache
    vol.write(8 * 4096, b"W" * 4096)
    blob = vol.read(7 * 4096, 3 * 4096)
    assert blob[:4096] == bytes([8]) * 4096
    assert blob[4096:8192] == b"W" * 4096
    assert blob[8192:] == bytes([10]) * 4096


def test_large_write_spanning_batches():
    _, _, vol = make_volume()
    payload = bytes(range(256)) * 1024  # 256 KiB > 64 KiB batch
    vol.write(0, payload)
    vol.drain()
    assert vol.read(0, len(payload)) == payload


def test_write_volume_larger_than_cache():
    """Write cache pressure forces destage; data must survive."""
    store, _, vol = make_volume(size=16 * MiB, cache=1 * MiB)
    rng = random.Random(1)
    expect = {}
    for i in range(600):
        lba = rng.randrange(0, 16 * MiB // 4096) * 4096
        data = bytes([i % 255 + 1]) * 4096
        vol.write(lba, data)
        expect[lba] = data
    for lba, data in list(expect.items())[:100]:
        assert vol.read(lba, 4096) == data


def test_flush_is_commit_barrier():
    _, image, vol = make_volume()
    vol.write(0, b"d" * 4096)
    assert image.pending_writes > 0
    vol.flush()
    assert image.pending_writes == 0


def test_read_cache_warms_from_backend():
    store, _, vol = make_volume()
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    # drop the write cache entries by forcing release: read twice
    vol.rc.clear()
    gets_before = store.stats.range_gets
    vol.read(20 * 4096, 4096)
    first = store.stats.range_gets
    assert first > gets_before
    vol.read(20 * 4096, 4096)  # now a cache hit
    assert store.stats.range_gets == first


def test_prefetch_pulls_temporal_neighbours():
    store, _, vol = make_volume()
    # write temporally adjacent, spatially scattered blocks
    lbas = [i * 97 % 4000 * 4096 for i in range(64)]
    for i, lba in enumerate(lbas):
        vol.write(lba, bytes([i % 255 + 1]) * 4096)
    vol.drain()
    vol.rc.clear()
    vol.read(lbas[10], 4096)
    gets = store.stats.range_gets
    # the neighbours written around the same time are now cached
    vol.read(lbas[11], 4096)
    assert store.stats.range_gets == gets


def test_write_invalidates_read_cache():
    store, _, vol = make_volume()
    vol.write(0, b"old!" * 1024)
    vol.drain()
    vol.rc.clear()
    vol.read(0, 4096)  # warm the read cache from backend
    vol.write(0, b"new!" * 1024)
    assert vol.read(0, 4096) == b"new!" * 1024
    vol.drain()
    assert vol.read(0, 4096) == b"new!" * 1024


# -- recovery -----------------------------------------------------------------


def test_clean_close_and_reopen():
    store, image, vol = make_volume()
    for i in range(32):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.close()
    vol2 = LSVDVolume.open(store, "vd", image, small_config())
    for i in range(32):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_crash_with_cache_recovers_all_committed_writes():
    """§2.2/§3.4: with the cache intact, every committed (pre-barrier)
    write must survive a crash."""
    store, image, vol = make_volume()
    for i in range(40):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()  # commit barrier: all 40 writes are committed
    vol.write(40 * 4096, b"U" * 4096)  # uncommitted
    image.crash(rng=random.Random(5))
    vol2 = LSVDVolume.open(store, "vd", image, small_config())
    for i in range(40):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_crash_replays_cache_to_backend():
    """§3.3: recovery brings the backend up to date with the cache."""
    store, image, vol = make_volume()
    for i in range(10):  # too little data to seal a batch
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()
    backend_bytes_before = store.total_bytes("vd.")
    image.crash(rng=random.Random(7), survive_probability=1.0, allow_torn=False)
    vol2 = LSVDVolume.open(store, "vd", image, small_config())
    vol2.drain()
    assert store.total_bytes("vd.") > backend_bytes_before
    # a second, cache-less mount now sees the data (it reached the backend)
    fresh_cache = DiskImage(4 * MiB)
    vol3 = LSVDVolume.open(store, "vd", fresh_cache, small_config(), cache_lost=True)
    for i in range(10):
        assert vol3.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_cache_loss_yields_backend_prefix():
    """§3.4 worst case: cache gone -> volume is a consistent prefix."""
    store, image, vol = make_volume()
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    vol.write(0, b"lost" * 1024)  # never destaged
    fresh_cache = DiskImage(4 * MiB)
    vol2 = LSVDVolume.open(store, "vd", fresh_cache, small_config(), cache_lost=True)
    # the destaged writes are all there; the cached-only write is gone
    assert vol2.read(0, 4096) == bytes([1]) * 4096
    for i in range(1, 64):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_double_crash_recovery_idempotent():
    """§3.3: 'the steps may be repeated without risk of inconsistency'."""
    store, image, vol = make_volume()
    for i in range(24):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()
    image.crash(rng=random.Random(1), survive_probability=1.0, allow_torn=False)
    vol2 = LSVDVolume.open(store, "vd", image, small_config())
    image.crash(rng=random.Random(2), survive_probability=1.0, allow_torn=False)
    vol3 = LSVDVolume.open(store, "vd", image, small_config())
    for i in range(24):
        assert vol3.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_recovery_with_unsettled_puts_prefix_rule():
    """Out-of-order PUT completion: recovery takes the consecutive prefix
    and replays the cache over it."""
    inner = InMemoryObjectStore()
    store = UnsettledObjectStore(inner)
    image = DiskImage(4 * MiB)
    cfg = small_config(checkpoint_interval=1000)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    store.settle_all()
    handles = []
    orig_put = store.put
    pending = {}

    for i in range(48):  # 3 batches
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()
    # three data PUTs are outstanding; settle 1st and 3rd only
    assert store.in_flight == 3
    hs = sorted(store._pending)
    store.settle(hs[0])
    vol.settle_put(hs[0])
    store.settle(hs[2])
    vol.settle_put(hs[2])
    store.crash()  # middle object lost; client crashes too
    image.crash(rng=random.Random(3), survive_probability=1.0, allow_torn=False)
    vol2 = LSVDVolume.open(inner, "vd", image, cfg)
    # all 48 writes were committed and the cache survived -> all recovered
    for i in range(48):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


# -- GC through the volume ------------------------------------------------


def test_volume_gc_keeps_data_correct():
    store, image, vol = make_volume(size=4 * MiB, cache=2 * MiB)
    rng = random.Random(11)
    expect = {}
    for i in range(1500):
        lba = rng.randrange(0, 4 * MiB // 4096) * 4096
        data = bytes([i % 255 + 1]) * 4096
        vol.write(lba, data)
        expect[lba] = data
    vol.drain()
    live, total = vol.occupancy()
    assert total > 0
    assert live / total >= vol.config.gc_low_watermark - 0.05
    for lba, data in expect.items():
        assert vol.read(lba, 4096) == data
    assert vol.gc.stats.victims_cleaned > 0


def test_volume_gc_then_crash_recovery():
    store, image, vol = make_volume(size=4 * MiB, cache=2 * MiB)
    rng = random.Random(13)
    expect = {}
    for i in range(1200):
        lba = rng.randrange(0, 4 * MiB // 4096) * 4096
        data = bytes([i % 255 + 1]) * 4096
        vol.write(lba, data)
        expect[lba] = data
    vol.flush()
    image.crash(rng=rng, survive_probability=1.0, allow_torn=False)
    vol2 = LSVDVolume.open(store, "vd", image, small_config())
    for lba, data in expect.items():
        assert vol2.read(lba, 4096) == data


# -- snapshots & clones -------------------------------------------------------


def test_volume_snapshot_and_mount():
    store, image, vol = make_volume()
    for i in range(32):
        vol.write(i * 4096, b"v1v1" * 1024)
    vol.snapshot("epoch1")
    for i in range(32):
        vol.write(i * 4096, b"v2v2" * 1024)
    vol.drain()
    snap_cache = DiskImage(4 * MiB)
    snap = LSVDVolume.open_snapshot(store, "vd", "epoch1", snap_cache, small_config())
    assert snap.read(0, 4096) == b"v1v1" * 1024
    with pytest.raises(LSVDError):
        snap.write(0, b"x" * 512)
    assert vol.read(0, 4096) == b"v2v2" * 1024


def test_volume_clone_workflow():
    store, image, vol = make_volume()
    for i in range(32):
        vol.write(i * 4096, b"base" * 1024)
    vol.close()
    clone_cache = DiskImage(4 * MiB)
    clone = LSVDVolume.clone(store, "vd", "dev1", clone_cache, small_config())
    assert clone.read(0, 4096) == b"base" * 1024
    clone.write(0, b"mine" * 1024)
    assert clone.read(0, 4096) == b"mine" * 1024
    # base unaffected
    base_cache = DiskImage(4 * MiB)
    base = LSVDVolume.open(store, "vd", base_cache, small_config(), cache_lost=True)
    assert base.read(0, 4096) == b"base" * 1024


def test_volume_clone_from_snapshot():
    store, image, vol = make_volume()
    vol.write(0, b"snap" * 1024)
    vol.snapshot("s1")
    vol.write(0, b"late" * 1024)
    vol.drain()
    clone_cache = DiskImage(4 * MiB)
    clone = LSVDVolume.clone(
        store, "vd", "from-snap", clone_cache, small_config(), at_snapshot="s1"
    )
    assert clone.read(0, 4096) == b"snap" * 1024


def test_snapshot_survives_gc_and_remains_mountable():
    store, image, vol = make_volume(size=4 * MiB, cache=2 * MiB)
    rng = random.Random(17)
    for i in range(400):
        vol.write(rng.randrange(0, 512) * 4096, bytes([i % 255 + 1]) * 4096)
    vol.snapshot("mid")
    snapshot_view = {}
    snap_cache = DiskImage(4 * MiB)
    snap = LSVDVolume.open_snapshot(store, "vd", "mid", snap_cache, small_config())
    for lba in range(0, 512 * 4096, 64 * 4096):
        snapshot_view[lba] = snap.read(lba, 4096)
    # churn heavily to force GC
    for i in range(1200):
        vol.write(rng.randrange(0, 512) * 4096, bytes([(i * 7) % 255 + 1]) * 4096)
    vol.drain()
    assert vol.gc.stats.victims_cleaned > 0
    snap_cache2 = DiskImage(4 * MiB)
    snap2 = LSVDVolume.open_snapshot(store, "vd", "mid", snap_cache2, small_config())
    for lba, data in snapshot_view.items():
        assert snap2.read(lba, 4096) == data


def test_delete_snapshot_releases_space():
    store, image, vol = make_volume(size=4 * MiB, cache=2 * MiB)
    rng = random.Random(19)
    for i in range(400):
        vol.write(rng.randrange(0, 512) * 4096, bytes([i % 255 + 1]) * 4096)
    vol.snapshot("pin")
    for i in range(1200):
        vol.write(rng.randrange(0, 512) * 4096, bytes([(i * 3) % 255 + 1]) * 4096)
    vol.drain()
    bytes_with_snap = store.total_bytes("vd.")
    vol.delete_snapshot("pin")
    vol.drain()
    assert store.total_bytes("vd.") < bytes_with_snap
