"""Tests for the in-memory and unsettled object stores."""

import pytest

from repro.objstore import InMemoryObjectStore, NoSuchKeyError, UnsettledObjectStore


def test_put_get_roundtrip():
    s = InMemoryObjectStore()
    s.put("a", b"data")
    assert s.get("a") == b"data"
    assert s.exists("a")
    assert s.size("a") == 4


def test_get_missing_raises():
    s = InMemoryObjectStore()
    with pytest.raises(NoSuchKeyError):
        s.get("nope")
    with pytest.raises(NoSuchKeyError):
        s.get_range("nope", 0, 1)
    with pytest.raises(NoSuchKeyError):
        s.delete("nope")
    with pytest.raises(NoSuchKeyError):
        s.size("nope")


def test_get_range():
    s = InMemoryObjectStore()
    s.put("a", b"0123456789")
    assert s.get_range("a", 2, 3) == b"234"
    assert s.get_range("a", 8, 100) == b"89"  # clipped like HTTP ranges
    with pytest.raises(ValueError):
        s.get_range("a", -1, 2)


def test_list_prefix_sorted():
    s = InMemoryObjectStore()
    for name in ("v.00000002", "v.00000001", "w.00000001", "v.super"):
        s.put(name, b"")
    assert s.list("v.") == ["v.00000001", "v.00000002", "v.super"]
    assert s.list() == ["v.00000001", "v.00000002", "v.super", "w.00000001"]


def test_delete_removes():
    s = InMemoryObjectStore()
    s.put("a", b"x")
    s.delete("a")
    assert not s.exists("a")


def test_copy_server_side():
    s = InMemoryObjectStore()
    s.put("src", b"payload")
    s.copy("src", "dst")
    assert s.get("dst") == b"payload"
    with pytest.raises(NoSuchKeyError):
        s.copy("missing", "x")


def test_put_overwrites():
    s = InMemoryObjectStore()
    s.put("a", b"one")
    s.put("a", b"two")
    assert s.get("a") == b"two"


def test_stats_counters():
    s = InMemoryObjectStore()
    s.put("a", b"xyz")
    s.get("a")
    s.get_range("a", 0, 1)
    s.list()
    assert s.stats.puts == 1
    assert s.stats.gets == 1
    assert s.stats.range_gets == 1
    assert s.stats.lists == 1
    assert s.stats.bytes_put == 3
    assert s.stats.bytes_got == 4


def test_total_bytes():
    s = InMemoryObjectStore()
    s.put("v.1", b"abc")
    s.put("v.2", b"de")
    s.put("w.1", b"zzzzz")
    assert s.total_bytes("v.") == 5
    assert s.total_bytes() == 10


# -- unsettled wrapper --------------------------------------------------------


def test_unsettled_put_invisible_until_settled():
    inner = InMemoryObjectStore()
    s = UnsettledObjectStore(inner)
    h = s.put("a", b"data")
    assert not s.exists("a")
    assert s.in_flight == 1
    s.settle(h)
    assert s.get("a") == b"data"
    assert s.in_flight == 0


def test_unsettled_out_of_order_settlement():
    s = UnsettledObjectStore(InMemoryObjectStore())
    h1 = s.put("v.00000001", b"1")
    h2 = s.put("v.00000002", b"2")
    s.settle(h2)  # object 2 lands while 1 is still in flight
    assert s.list("v.") == ["v.00000002"]
    s.settle(h1)
    assert s.list("v.") == ["v.00000001", "v.00000002"]


def test_unsettled_crash_drops_in_flight():
    s = UnsettledObjectStore(InMemoryObjectStore())
    h1 = s.put("a", b"1")
    s.put("b", b"2")
    s.settle(h1)
    lost = s.crash()
    assert lost == ["b"]
    assert s.exists("a")
    assert not s.exists("b")
    assert s.in_flight == 0


def test_unsettled_settle_all():
    s = UnsettledObjectStore(InMemoryObjectStore())
    s.put("a", b"1")
    s.put("b", b"2")
    s.settle_all()
    assert s.exists("a") and s.exists("b")
