"""Property-based tests for the write-cache log under random workloads."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import CacheFullError
from repro.core.write_cache import WriteCache
from repro.devices.image import DiskImage

MiB = 1 << 20


def make_cache(size=4 * MiB):
    img = DiskImage(size)
    wc = WriteCache(img, 0, size, ckpt_slot_size=128 * 1024)
    wc.format()
    return wc


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "write", "write", "release", "barrier", "ckpt"]),
        st.integers(min_value=0, max_value=255),  # page index
        st.integers(min_value=0, max_value=255),  # fill byte seed
    ),
    min_size=5,
    max_size=120,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops_strategy)
def test_cache_reads_agree_with_model_modulo_releases(ops):
    """Unreleased data must read back exactly; released data may only
    disappear entirely (never read as the wrong bytes)."""
    wc = make_cache()
    model = {}  # page -> (fill, seq)
    released_through = 0
    for op, page, fill in ops:
        if op == "write":
            data = bytes([fill % 255 + 1]) * 4096
            try:
                rec = wc.append([(page * 4096, data)])
            except CacheFullError:
                if wc.records:
                    released_through = wc.records[
                        max(0, len(wc.records) // 2)
                    ].seq
                    wc.release_through(released_through)
                rec = wc.append([(page * 4096, data)])
            model[page] = (data, rec.seq)
        elif op == "release" and wc.records:
            released_through = wc.records[len(wc.records) // 2].seq
            wc.release_through(released_through)
        elif op == "barrier":
            wc.barrier()
        elif op == "ckpt":
            wc.checkpoint()
    for page, (data, seq) in model.items():
        pieces = wc.read(page * 4096, 4096)
        if seq > released_through:
            assert len(pieces) == 1
            assert pieces[0][2] == data
        elif pieces:
            # still present: must be the newest value, not garbage
            assert pieces[0][2] == data


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=ops_strategy, crash_seed=st.integers(min_value=0, max_value=2**16))
def test_recovery_invariants_under_random_ops(ops, crash_seed):
    """After any crash: recovered records form a consecutive seq range,
    every barrier-covered record survives, and all content is exact."""
    wc = make_cache()
    payloads = {}
    durable_seq = 0
    for op, page, fill in ops:
        if op == "write":
            data = bytes([fill % 255 + 1]) * 4096
            try:
                rec = wc.append([(page * 4096, data)])
            except CacheFullError:
                if wc.records:
                    wc.release_through(wc.records[len(wc.records) // 2].seq)
                try:
                    rec = wc.append([(page * 4096, data)])
                except CacheFullError:
                    continue
            payloads[rec.seq] = (page * 4096, data)
        elif op == "release" and wc.records:
            wc.release_through(wc.records[len(wc.records) // 2].seq)
        elif op == "barrier":
            wc.barrier()
            if wc.records:
                durable_seq = wc.records[-1].seq
        elif op == "ckpt":
            wc.checkpoint()
    lowest_live = wc.records[0].seq if wc.records else None
    wc.image.crash(rng=random.Random(crash_seed))
    fresh = WriteCache(wc.image, 0, wc.region_size, wc.slot_size)
    fresh.recover()
    seqs = [r.seq for r in fresh.records]
    # consecutive
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs))) if seqs else True
    # all barrier-covered, still-live records survive
    if lowest_live is not None:
        for seq in range(max(lowest_live, 1), durable_seq + 1):
            assert seq in set(seqs), (seq, durable_seq, seqs)
    # content of every recovered record is exact
    for record, _ref in fresh.records_after(0):
        if record.seq in payloads:
            lba, data = payloads[record.seq]
            assert record.extents == [(lba, 4096)]
            assert fresh.record_data(record, 0) == data
