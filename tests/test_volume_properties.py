"""Property-based tests: LSVD must behave exactly like a plain disk.

A reference model (a flat bytearray) is driven with the same operation
sequences as the volume; every read must agree, across overwrites,
drains, GC, snapshots, crash/recovery cycles, and clone divergence.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20
VOLUME = 4 * MiB
PAGES = VOLUME // 4096


def make_volume(cache=2 * MiB, batch=32 * 1024):
    store = InMemoryObjectStore()
    image = DiskImage(cache)
    cfg = LSVDConfig(batch_size=batch, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", VOLUME, image, cfg)
    return store, image, cfg, vol


op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "flush", "drain"]),
        st.integers(min_value=0, max_value=PAGES - 2),  # page index
        st.integers(min_value=1, max_value=2),  # pages
        st.integers(min_value=0, max_value=255),  # fill byte
    ),
    min_size=1,
    max_size=60,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=op_strategy)
def test_volume_agrees_with_flat_disk_model(ops):
    _store, _image, _cfg, vol = make_volume()
    model = bytearray(VOLUME)
    for kind, page, pages, fill in ops:
        offset = page * 4096
        length = min(pages * 4096, VOLUME - offset)
        if kind == "write":
            data = bytes([fill]) * length
            vol.write(offset, data)
            model[offset : offset + length] = data
        elif kind == "read":
            assert vol.read(offset, length) == bytes(model[offset : offset + length])
        elif kind == "flush":
            vol.flush()
        else:
            vol.drain()
    # final full sweep
    for offset in range(0, VOLUME, 512 * 1024):
        length = min(512 * 1024, VOLUME - offset)
        assert vol.read(offset, length) == bytes(model[offset : offset + length])


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    ops=op_strategy,
    crash_seed=st.integers(min_value=0, max_value=2**16),
)
def test_recovery_with_intact_cache_preserves_everything(ops, crash_seed):
    """With all cache writes flushed before the crash, recovery must
    reproduce the model disk exactly."""
    store, image, cfg, vol = make_volume()
    model = bytearray(VOLUME)
    for kind, page, pages, fill in ops:
        offset = page * 4096
        length = min(pages * 4096, VOLUME - offset)
        if kind == "write":
            data = bytes([fill]) * length
            vol.write(offset, data)
            model[offset : offset + length] = data
        elif kind == "drain":
            vol.drain()
    vol.flush()
    image.crash(rng=random.Random(crash_seed))
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    for offset in range(0, VOLUME, 512 * 1024):
        length = min(512 * 1024, VOLUME - offset)
        assert vol2.read(offset, length) == bytes(model[offset : offset + length])


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=op_strategy)
def test_snapshot_immutable_under_later_churn(ops):
    store, _image, cfg, vol = make_volume()
    model = bytearray(VOLUME)
    for kind, page, pages, fill in ops:
        offset = page * 4096
        length = min(pages * 4096, VOLUME - offset)
        if kind == "write":
            data = bytes([fill]) * length
            vol.write(offset, data)
            model[offset : offset + length] = data
    vol.snapshot("pin")
    frozen = bytes(model)
    # churn heavily afterwards
    rng = random.Random(1)
    for i in range(300):
        vol.write(rng.randrange(0, PAGES) * 4096, bytes([i % 250 + 1]) * 4096)
    vol.drain()
    snap = LSVDVolume.open_snapshot(store, "vd", "pin", DiskImage(2 * MiB), cfg)
    for offset in range(0, VOLUME, 512 * 1024):
        length = min(512 * 1024, VOLUME - offset)
        assert snap.read(offset, length) == frozen[offset : offset + length]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=op_strategy)
def test_clone_divergence_is_isolated(ops):
    store, _image, cfg, vol = make_volume()
    model = bytearray(VOLUME)
    for kind, page, pages, fill in ops:
        offset = page * 4096
        length = min(pages * 4096, VOLUME - offset)
        if kind == "write":
            data = bytes([fill]) * length
            vol.write(offset, data)
            model[offset : offset + length] = data
    vol.close()
    base_model = bytes(model)
    clone = LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)
    clone_model = bytearray(base_model)
    rng = random.Random(2)
    for i in range(100):
        offset = rng.randrange(0, PAGES) * 4096
        data = bytes([i % 250 + 1]) * 4096
        clone.write(offset, data)
        clone_model[offset : offset + 4096] = data
    clone.drain()
    # clone sees its own state
    for offset in range(0, VOLUME, 1 * MiB):
        length = min(1 * MiB, VOLUME - offset)
        assert clone.read(offset, length) == bytes(clone_model[offset : offset + length])
    # base unchanged
    base = LSVDVolume.open(store, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    for offset in range(0, VOLUME, 1 * MiB):
        length = min(1 * MiB, VOLUME - offset)
        assert base.read(offset, length) == base_model[offset : offset + length]
