"""Unit tests for Resource, Store, and TokenBucket."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import Resource, Store, TokenBucket


def hold(sim, res, duration, log, tag):
    req = res.request()
    yield req
    log.append(("acquire", tag, sim.now))
    try:
        yield sim.timeout(duration)
    finally:
        res.release()
    log.append(("release", tag, sim.now))


def test_resource_serialises_when_capacity_one():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []
    sim.process(hold(sim, res, 2.0, log, "a"))
    sim.process(hold(sim, res, 2.0, log, "b"))
    sim.run()
    assert log == [
        ("acquire", "a", 0.0),
        ("release", "a", 2.0),
        ("acquire", "b", 2.0),
        ("release", "b", 4.0),
    ]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []
    for tag in ("a", "b", "c"):
        sim.process(hold(sim, res, 2.0, log, tag))
    sim.run()
    acquires = {tag: t for op, tag, t in log if op == "acquire"}
    assert acquires == {"a": 0.0, "b": 0.0, "c": 2.0}


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_utilization_tracks_busy_time():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def delayed():
        yield sim.timeout(5.0)
        yield from hold(sim, res, 5.0, log, "x")

    sim.process(delayed())
    sim.run()
    # busy 5..10 out of 10 seconds
    assert res.utilization() == pytest.approx(0.5)


def test_resource_queue_length():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []
    sim.process(hold(sim, res, 10.0, log, "a"))
    sim.process(hold(sim, res, 1.0, log, "b"))
    sim.process(hold(sim, res, 1.0, log, "c"))
    sim.run(until=1.0)
    assert res.queue_length == 2


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    def producer():
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_buffered_get_is_immediate():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    assert len(store) == 1
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.run()
    assert got == [(0.0, "x")]
    assert len(store) == 0


def test_token_bucket_rate_limits():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=100.0)  # 100 bytes/sec
    times = []

    def sender():
        for _ in range(3):
            yield bucket.consume(100)
            times.append(sim.now)

    sim.process(sender())
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]
    assert bucket.total_bytes == 300


def test_token_bucket_concurrent_consumers_serialise():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=100.0)
    times = []

    def sender(tag):
        yield bucket.consume(50)
        times.append((tag, sim.now))

    sim.process(sender("a"))
    sim.process(sender("b"))
    sim.run()
    assert times == [("a", pytest.approx(0.5)), ("b", pytest.approx(1.0))]


def test_token_bucket_rejects_bad_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=0)
