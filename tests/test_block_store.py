"""Tests for the log-structured block store: stream, recovery, clones."""

import pytest

from repro.core.block_store import BlockStore
from repro.core.config import LSVDConfig
from repro.core.errors import (
    SnapshotInUseError,
    VolumeExistsError,
    VolumeNotFoundError,
)
from repro.core.gc import GarbageCollector
from repro.core.log import object_name
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=1000)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_store(store=None, name="vol", size=64 * MiB, **kw):
    store = store if store is not None else InMemoryObjectStore()
    bs = BlockStore.create(store, name, size, small_config(**kw))
    return store, bs


def fill(bs, n_writes=40, size=4096, stride=8192):
    """Write n sequential-ish extents, sealing/committing as needed."""
    for i in range(n_writes):
        sealed = bs.add_write(i * stride, bytes([i % 255 + 1]) * size, record_seq=i + 1)
        for batch in sealed:
            bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)


def read_all(bs, lba, length):
    out = bytearray(length)
    for ext in bs.lookup(lba, length):
        data = bs.fetch(ext.target, ext.offset, ext.length)
        out[ext.lba - lba : ext.lba - lba + ext.length] = data
    return bytes(out)


def test_create_writes_superblock_and_checkpoint():
    store, bs = make_store()
    assert store.exists("vol.super")
    assert store.exists(object_name("vol", 1))
    meta = BlockStore.read_super(store, "vol")
    assert meta["size"] == 64 * MiB
    assert meta["last_ckpt_seq"] == 1


def test_create_twice_rejected():
    store, bs = make_store()
    with pytest.raises(VolumeExistsError):
        BlockStore.create(store, "vol", MiB)


def test_open_missing_volume():
    with pytest.raises(VolumeNotFoundError):
        BlockStore.open(InMemoryObjectStore(), "ghost")


def test_write_read_roundtrip_through_objects():
    store, bs = make_store()
    fill(bs, n_writes=20)
    assert read_all(bs, 0, 4096) == bytes([1]) * 4096
    assert read_all(bs, 5 * 8192, 4096) == bytes([6]) * 4096


def test_batch_seal_at_size():
    store, bs = make_store()
    sealed = []
    for i in range(17):  # 17 * 4K > 64K batch
        sealed = bs.add_write(i * 4096, b"s" * 4096, record_seq=i + 1)
        if sealed:
            break
    assert len(sealed) == 1  # one class in play -> one object in the group
    assert sealed[0].data_len == 64 * 1024


def test_object_names_encode_order():
    store, bs = make_store()
    fill(bs, n_writes=40)
    names = [n for n in store.list("vol.") if n.split(".")[-1].isdigit()]
    seqs = sorted(int(n.split(".")[-1]) for n in names)
    assert seqs == list(range(1, len(seqs) + 1))


def test_write_beyond_bounds_rejected():
    store, bs = make_store(size=1 * MiB)
    with pytest.raises(ValueError):
        bs.add_write(1 * MiB - 100, b"x" * 4096)


def test_stats_write_amplification_counts_everything():
    store, bs = make_store()
    fill(bs, n_writes=32, size=4096, stride=4096)
    assert bs.stats.client_bytes == 32 * 4096
    assert bs.stats.data_bytes == 32 * 4096
    assert bs.stats.write_amplification >= 1.0


def test_fetch_with_prefetch_covers_request_and_neighbours():
    store, bs = make_store()
    fill(bs, n_writes=20, size=4096, stride=8192)
    [ext] = bs.lookup(5 * 8192, 4096)
    pieces = bs.fetch_with_prefetch(ext.target, ext.offset, ext.length)
    fetched = {lba for lba, _ in pieces}
    assert 5 * 8192 in fetched
    assert len(pieces) > 1  # prefetched temporally adjacent writes


# -- recovery ----------------------------------------------------------------


def test_recover_rebuilds_map_from_headers():
    store, bs = make_store()
    fill(bs, n_writes=40)
    bs2, state = BlockStore.open(store, "vol", small_config())
    assert bs2.omap.entries() == bs.omap.entries()
    assert state.last_record_seq == 40
    assert read_all(bs2, 3 * 8192, 4096) == bytes([4]) * 4096


def test_recover_from_checkpoint_plus_replay():
    store, bs = make_store()
    fill(bs, n_writes=20)
    bs.write_checkpoint()
    fill(bs, n_writes=10, stride=8192)  # overwrites first 10
    bs2, state = BlockStore.open(store, "vol", small_config())
    assert bs2.omap.entries() == bs.omap.entries()


def test_recover_stops_at_hole_and_deletes_stranded():
    """§3.3: objects 99,100,102 -> take 99,100; delete 102."""
    inner = InMemoryObjectStore()
    store = UnsettledObjectStore(inner)
    bs = BlockStore.create(store, "vol", 64 * MiB, small_config())
    store.settle_all()  # creation checkpoint + super land
    handles = {}
    for i in range(48):  # 3 objects of 16 writes each
        sealed = bs.add_write(i * 4096, bytes([i + 1]) * 4096, record_seq=i + 1)
        for batch in sealed:
            handles[batch.seq] = bs.commit(batch)
    assert len(handles) == 3
    seqs = sorted(handles)
    store.settle(handles[seqs[0]])  # object A lands
    store.settle(handles[seqs[2]])  # object C lands out of order
    store.crash()  # object B lost
    bs2, state = BlockStore.open(inner, "vol", small_config())
    assert state.last_seq == seqs[0]
    assert object_name("vol", seqs[2]) in state.stranded_deleted
    assert not inner.exists(object_name("vol", seqs[2]))
    # data from object A visible, from B and C gone
    assert read_all(bs2, 0, 4096) == bytes([1]) * 4096
    assert bs2.lookup(20 * 4096, 4096) == []


def test_recover_last_record_seq_tracks_newest_object():
    store, bs = make_store()
    fill(bs, n_writes=33)
    _, state = BlockStore.open(store, "vol", small_config())
    assert state.last_record_seq == 33


def test_recover_with_lost_super_update_finds_newer_checkpoint():
    store, bs = make_store()
    fill(bs, n_writes=20)
    bs.write_checkpoint()
    # simulate losing the superblock update: restore an older super
    meta_new = BlockStore.read_super(store, "vol")
    bs_old = BlockStore(store, "vol", bytes.fromhex(meta_new["uuid"]), 64 * MiB, small_config())
    bs_old.last_ckpt_seq = 1
    bs_old.write_super()
    bs2, _ = BlockStore.open(store, "vol", small_config())
    assert bs2.omap.entries() == bs.omap.entries()


def test_checkpoint_due_counter():
    store, bs = make_store(checkpoint_interval=2)
    assert not bs.checkpoint_due
    fill(bs, n_writes=16, size=4096, stride=4096)  # one object
    assert not bs.checkpoint_due
    fill(bs, n_writes=16, size=4096, stride=4096)
    assert bs.checkpoint_due
    bs.write_checkpoint()
    assert not bs.checkpoint_due


def test_retire_old_checkpoints_keeps_two():
    store, bs = make_store()
    fill(bs)
    c2, _ = bs.write_checkpoint()
    fill(bs)
    c3, _ = bs.write_checkpoint()
    fill(bs)
    c4, _ = bs.write_checkpoint()
    retired = bs.retire_old_checkpoints()
    assert store.exists(object_name("vol", c4))
    assert store.exists(object_name("vol", c3))
    for seq in retired:
        assert not store.exists(object_name("vol", seq))
    assert 1 in retired or c2 in retired


# -- GC ------------------------------------------------------------------


def run_gc(bs, **kw):
    gc = GarbageCollector(bs, bs.config, **kw)
    rounds = 0
    while gc.needs_gc() and rounds < 50:
        plan = gc.plan()
        if plan is None:
            break
        gc.execute(plan)
        bs.write_checkpoint()
        gc.delete_victims(plan.victims)
        bs.retire_old_checkpoints()
        rounds += 1
    return gc


def test_gc_reclaims_overwritten_space():
    store, bs = make_store()
    for round_ in range(4):  # write the same 1 MiB region repeatedly
        for i in range(256):
            sealed = bs.add_write(i * 4096, bytes([round_ + 1]) * 4096)
            for batch in sealed:
                bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    live_before, total_before = bs.occupancy()
    assert live_before / total_before < 0.5  # mostly garbage
    gc = run_gc(bs)
    live, total = bs.occupancy()
    assert live / total >= bs.config.gc_low_watermark
    assert gc.stats.victims_cleaned > 0
    assert bs.stats.objects_deleted > 0
    # data still correct after cleaning
    assert read_all(bs, 0, 4096) == bytes([4]) * 4096
    assert read_all(bs, 255 * 4096, 4096) == bytes([4]) * 4096


def test_gc_then_recover_is_consistent():
    store, bs = make_store()
    for round_ in range(3):
        for i in range(64):
            sealed = bs.add_write(i * 4096, bytes([round_ * 64 + i + 1]) * 4096)
            for batch in sealed:
                bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    run_gc(bs)
    bs2, _ = BlockStore.open(store, "vol", small_config())
    for i in range(64):
        assert read_all(bs2, i * 4096, 4096) == bytes([2 * 64 + i + 1]) * 4096


def test_gc_cache_reader_short_circuits_backend_reads():
    store, bs = make_store()
    # overwrite only strided quarters so victims keep partial live data
    for round_ in range(3):
        for i in range(64):
            if round_ == 0 or i % 4 == round_ - 1:
                sealed = bs.add_write(i * 4096, bytes([i + 1]) * 4096)
                for batch in sealed:
                    bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    served = []

    def cache_reader(lba, length):
        served.append((lba, length))
        return b"\xee" * length  # pretend everything is cached

    gc = GarbageCollector(bs, bs.config, cache_reader=cache_reader)
    assert gc.needs_gc()
    for _ in range(10):
        plan = gc.plan()
        if plan is None:
            break
        gc.execute(plan)
        bs.write_checkpoint()
        gc.delete_victims(plan.victims)
        if plan.pieces:
            assert plan.bytes_read_cache > 0
            assert plan.bytes_read_backend == 0
            break
    assert served


# -- snapshots ----------------------------------------------------------------


def test_snapshot_defers_gc_deletes():
    store, bs = make_store()
    for i in range(32):
        sealed = bs.add_write(i * 4096, b"v1" * 2048)
        for batch in sealed:
            bs.commit(batch)
    snap_seq = bs.create_snapshot("snap1")
    for i in range(32):
        sealed = bs.add_write(i * 4096, b"v2" * 2048)
        for batch in sealed:
            bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    gc = run_gc(bs)
    assert gc.stats.deletes_deferred > 0
    assert bs.deferred_deletes
    # the snapshot's objects are still present
    for victim in bs.deferred_deletes:
        assert store.exists(object_name("vol", victim))
    # deleting the snapshot performs the deferred deletes
    deleted = bs.delete_snapshot("snap1")
    assert deleted
    for victim in deleted:
        assert not store.exists(object_name("vol", victim))


def test_snapshot_duplicate_name_rejected():
    store, bs = make_store()
    bs.create_snapshot("s")
    with pytest.raises(VolumeExistsError):
        bs.create_snapshot("s")
    with pytest.raises(VolumeNotFoundError):
        bs.delete_snapshot("zzz")


def test_snapshot_mount_sees_old_data():
    store, bs = make_store()
    fill(bs, n_writes=16, size=4096, stride=4096)
    snap_seq = bs.create_snapshot("before")
    for i in range(16):
        sealed = bs.add_write(i * 4096, b"NEW!" * 1024)
        for batch in sealed:
            bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    old, _ = BlockStore.open(store, "vol", small_config(), upto=snap_seq, read_only=True)
    assert read_all(old, 0, 4096) == bytes([1]) * 4096
    current, _ = BlockStore.open(store, "vol", small_config())
    assert read_all(current, 0, 4096) == b"NEW!" * 1024


# -- clones -------------------------------------------------------------------


def test_clone_shares_base_prefix():
    store, bs = make_store()
    fill(bs, n_writes=16, size=4096, stride=4096)
    clone = BlockStore.clone_from(store, "vol", "clone1", small_config())
    # clone reads base data through base object names
    assert read_all(clone, 0, 4096) == bytes([1]) * 4096
    # clone writes go to its own stream
    for i in range(16):
        sealed = clone.add_write(i * 4096, b"CLNE" * 1024)
        for batch in sealed:
            clone.commit(batch)
    for sealed in clone.seal_all():
        clone.commit(sealed)
    assert read_all(clone, 0, 4096) == b"CLNE" * 1024
    # base unchanged
    base2, _ = BlockStore.open(store, "vol", small_config())
    assert read_all(base2, 0, 4096) == bytes([1]) * 4096


def test_two_clones_diverge_independently():
    store, bs = make_store()
    fill(bs, n_writes=16, size=4096, stride=4096)
    c1 = BlockStore.clone_from(store, "vol", "c1", small_config())
    c2 = BlockStore.clone_from(store, "vol", "c2", small_config())
    for clone, tag in ((c1, b"1111"), (c2, b"2222")):
        for batch in clone.add_write(0, tag * 1024):
            clone.commit(batch)
        for batch in clone.seal_all():
            clone.commit(batch)
    assert read_all(c1, 0, 4096) == b"1111" * 1024
    assert read_all(c2, 0, 4096) == b"2222" * 1024


def test_clone_recovery_roundtrip():
    store, bs = make_store()
    fill(bs, n_writes=16, size=4096, stride=4096)
    clone = BlockStore.clone_from(store, "vol", "c1", small_config())
    for batch in clone.add_write(4096, b"zzzz" * 1024):
        clone.commit(batch)
    for batch in clone.seal_all():
        clone.commit(batch)
    c2, _ = BlockStore.open(store, "c1", small_config())
    assert read_all(c2, 0, 4096) == bytes([1]) * 4096  # from base
    assert read_all(c2, 4096, 4096) == b"zzzz" * 1024  # own write


def test_clone_gc_never_touches_base_objects():
    store, bs = make_store()
    fill(bs, n_writes=32, size=4096, stride=4096)
    clone = BlockStore.clone_from(store, "vol", "c1", small_config())
    for round_ in range(3):
        for i in range(32):
            sealed = clone.add_write(i * 4096, bytes([round_ + 10]) * 4096)
            for batch in sealed:
                clone.commit(batch)
    for sealed in clone.seal_all():
        clone.commit(sealed)
    base_objects_before = set(store.list("vol."))
    run_gc(clone)
    assert set(store.list("vol.")) == base_objects_before
    with pytest.raises(SnapshotInUseError):
        clone.delete_object(1)


def test_clone_from_snapshot():
    store, bs = make_store()
    fill(bs, n_writes=16, size=4096, stride=4096)
    bs.create_snapshot("s1")
    for i in range(16):
        sealed = bs.add_write(i * 4096, b"LATE" * 1024)
        for batch in sealed:
            bs.commit(batch)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    clone = BlockStore.clone_from(store, "vol", "c1", small_config(), at_snapshot="s1")
    assert read_all(clone, 0, 4096) == bytes([1]) * 4096
    with pytest.raises(VolumeNotFoundError):
        BlockStore.clone_from(store, "vol", "c2", small_config(), at_snapshot="nope")
