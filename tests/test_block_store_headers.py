"""Block-store internals: naming, headers, superblock details."""

import pytest

from repro.core.block_store import BlockStore
from repro.core.config import LSVDConfig
from repro.core.log import KIND_CHECKPOINT, KIND_DATA
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=1000)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_store(**kw):
    store = InMemoryObjectStore()
    bs = BlockStore.create(store, "vol", 64 * MiB, small_config(**kw))
    return store, bs


def fill_one_object(bs, tag=1):
    for i in range(16):
        sealed = bs.add_write(i * 4096, bytes([tag]) * 4096, record_seq=i + 1)
        if sealed:
            for batch in sealed:
                bs.commit(batch)
            return sealed[-1]
    sealed = bs.seal()
    bs.commit(sealed)
    return sealed


def test_headers_cached_after_first_fetch():
    store, bs = make_store()
    sealed = fill_one_object(bs)
    bs._header_cache.clear()
    range_gets = store.stats.range_gets
    bs.header_of(sealed.seq)
    assert store.stats.range_gets == range_gets + 1
    bs.header_of(sealed.seq)  # cached
    assert store.stats.range_gets == range_gets + 1


def test_object_header_fields_roundtrip():
    store, bs = make_store()
    sealed = fill_one_object(bs)
    header = bs.header_of(sealed.seq)
    assert header.kind == KIND_DATA
    assert header.seq == sealed.seq
    assert header.uuid == bs.uuid
    assert header.last_record_seq == 16
    assert header.data_len == 64 * 1024


def test_name_for_seq_without_base():
    _store, bs = make_store()
    assert bs.name_for_seq(7) == "vol.00000007"
    assert bs.first_own_seq == 1


def test_name_for_seq_with_chain():
    store, bs = make_store()
    fill_one_object(bs)
    clone = BlockStore.clone_from(store, "vol", "c1", small_config())
    base_last = clone.base_chain[-1][1]
    assert clone.name_for_seq(1) == "vol.00000001"
    assert clone.name_for_seq(base_last + 1).startswith("c1.")
    assert clone.first_own_seq == base_last + 1


def test_superblock_content():
    store, bs = make_store()
    meta = BlockStore.read_super(store, "vol")
    assert meta["size"] == 64 * MiB
    assert bytes.fromhex(meta["uuid"]) == bs.uuid
    assert meta["base_chain"] == []
    assert meta["snapshots"] == {}
    assert meta["last_ckpt_seq"] == 1


def test_checkpoint_objects_carry_kind():
    store, bs = make_store()
    fill_one_object(bs)
    seq, _ = bs.write_checkpoint()
    assert bs.header_of(seq).kind == KIND_CHECKPOINT


def test_occupancy_excludes_checkpoints_and_base():
    store, bs = make_store()
    sealed = fill_one_object(bs)
    bs.write_checkpoint()
    live, total = bs.occupancy()
    assert total == sealed.data_len  # checkpoint payload not counted
    assert live == sealed.data_len


def test_seal_empty_batch_returns_none():
    _store, bs = make_store()
    assert bs.seal() is None


def test_commit_tracks_merged_bytes():
    _store, bs = make_store()
    # two overwrites of the same 32K within one batch
    bs.add_write(0, b"a" * 32768, record_seq=1)
    for sealed in bs.add_write(0, b"b" * 32768, record_seq=2):
        bs.commit(sealed)
    for sealed in bs.seal_all():
        bs.commit(sealed)
    assert bs.stats.merged_bytes == 32768
    assert bs.stats.merge_ratio == pytest.approx(0.5)
