"""Tests for the RBD and bcache baseline models."""


import pytest

from repro.baselines import RBDVolume, make_bcache_rbd

MiB = 1 << 20


# -- RBD ----------------------------------------------------------------------


def test_rbd_write_read_roundtrip():
    rbd = RBDVolume("r", 16 * MiB)
    rbd.write(4096, b"hello!!!" * 512)
    data, _ops = rbd.read(4096, 4096)
    assert data == b"hello!!!" * 512


def test_rbd_write_emits_data_op_per_object_touched():
    rbd = RBDVolume("r", 16 * MiB, object_size=4 * MiB)
    ops = rbd.write(4 * MiB - 4096, b"x" * 8192)  # straddles two objects
    assert len(ops) == 2
    assert {op.object_key for op in ops} == {rbd.object_key(0), rbd.object_key(1)}
    assert all(op.io_class == "data" for op in ops)
    assert sum(op.nbytes for op in ops) == 8192


def test_rbd_writes_are_immediately_durable():
    rbd = RBDVolume("r", 1 * MiB)
    rbd.write(0, b"d" * 4096)
    assert rbd.image.pending_writes == 0  # acked == replicated+journaled


def test_rbd_flush_is_noop():
    rbd = RBDVolume("r", 1 * MiB)
    assert rbd.flush() == []


def test_rbd_bounds_checked():
    rbd = RBDVolume("r", 1 * MiB)
    with pytest.raises(ValueError):
        rbd.write(1 * MiB - 100, b"x" * 4096)


def test_rbd_stats():
    rbd = RBDVolume("r", 1 * MiB)
    rbd.write(0, b"x" * 4096)
    rbd.read(0, 512)
    assert rbd.stats.client_writes == 1
    assert rbd.stats.client_reads == 1
    assert rbd.stats.client_bytes_written == 4096


# -- bcache -------------------------------------------------------------------


def make_stack(volume=8 * MiB, cache=2 * MiB):
    return make_bcache_rbd("b", volume, cache)


def test_bcache_write_read_roundtrip():
    cache, backing, _img = make_stack()
    cache.write(0, b"c" * 4096)
    assert cache.read(0, 4096) == b"c" * 4096


def test_bcache_write_is_cached_not_destaged():
    cache, backing, _img = make_stack()
    cache.write(0, b"c" * 4096)
    assert cache.dirty_blocks == 1
    assert backing.stats.client_writes == 0


def test_bcache_sub_block_write_rmw():
    cache, backing, _img = make_stack()
    cache.write(0, b"A" * 4096)
    cache.write(512, b"B" * 512)
    data = cache.read(0, 4096)
    assert data[:512] == b"A" * 512
    assert data[512:1024] == b"B" * 512
    assert data[1024:] == b"A" * 3072


def test_bcache_read_miss_fills_from_backing():
    cache, backing, _img = make_stack()
    backing.write(8192, b"Z" * 4096)
    assert cache.read(8192, 4096) == b"Z" * 4096
    assert cache.stats.cache_misses >= 1
    # second read is a hit
    cache.read(8192, 4096)
    assert cache.stats.cache_hits >= 1


def test_bcache_barrier_writes_metadata():
    """§4.2.2: every commit barrier costs extra B-tree node writes."""
    cache, _backing, _img = make_stack()
    cache.write(0, b"x" * 4096)
    meta = cache.flush()
    assert meta >= 1
    assert cache.stats.metadata_writes >= 1
    # barrier with nothing dirty writes nothing
    assert cache.flush() == 0


def test_bcache_writeback_paused_under_load():
    cache, backing, _img = make_stack()
    cache.write(0, b"x" * 4096)
    assert cache.writeback_step(under_load=True) == 0
    assert backing.stats.client_writes == 0


def test_bcache_writeback_destages_in_lba_order_not_arrival_order():
    cache, backing, _img = make_stack()
    cache.write(8192, b"2" * 4096)  # written first, higher LBA
    cache.write(0, b"1" * 4096)  # written second, lower LBA
    destaged_order = []
    orig = backing.write

    def spy(offset, data):
        destaged_order.append(offset)
        return orig(offset, data)

    backing.write = spy
    cache.writeback_step(max_blocks=1)
    assert destaged_order == [0]  # LBA order: the *newer* write went first


def test_bcache_writeback_drains_everything():
    cache, backing, _img = make_stack()
    for i in range(32):
        cache.write(i * 4096, bytes([i + 1]) * 4096)
    while cache.writeback_step(max_blocks=8):
        pass
    assert cache.dirty_blocks == 0
    for i in range(32):
        data, _ = backing.read(i * 4096, 4096)
        assert data == bytes([i + 1]) * 4096


def test_bcache_lose_cache_loses_dirty_data():
    cache, backing, _img = make_stack()
    cache.write(0, b"x" * 4096)
    cache.writeback_step(max_blocks=1)  # destage write 1
    cache.write(4096, b"y" * 4096)  # never destaged
    cache.lose_cache()
    data, _ = backing.read(0, 4096)
    assert data == b"x" * 4096
    data, _ = backing.read(4096, 4096)
    assert data == b"\x00" * 4096  # lost


def test_bcache_cache_loss_can_break_prefix_consistency():
    """Table 4: arbitrary destage order means the surviving backing image
    may contain a later write without an earlier one."""
    cache, backing, _img = make_stack()
    cache.write(8192, b"OLD!" * 1024)  # arrival 0, high LBA
    cache.write(0, b"NEW!" * 1024)  # arrival 1, low LBA
    cache.writeback_step(max_blocks=1)  # destages LBA 0 (the NEWER write)
    cache.lose_cache()
    first, _ = backing.read(0, 4096)
    second, _ = backing.read(8192, 4096)
    assert first == b"NEW!" * 1024  # later write present...
    assert second == b"\x00" * 4096  # ...earlier write absent: not a prefix


def test_bcache_eviction_recycles_clean_blocks():
    cache, backing, _img = make_stack(volume=16 * MiB, cache=1 * MiB)
    # fill far more than the cache with clean reads
    for i in range(1024):
        backing.write(i * 4096, bytes([i % 250 + 1]) * 4096)
    for i in range(1024):
        cache.read(i * 4096, 4096)
    # still correct afterwards
    assert cache.read(1023 * 4096, 4096) == bytes([1023 % 250 + 1]) * 4096


def test_bcache_full_of_dirty_data_raises():
    cache, backing, _img = make_stack(volume=16 * MiB, cache=256 * 1024)
    with pytest.raises(RuntimeError):
        for i in range(256):
            cache.write(i * 4096, b"d" * 4096)
