"""Advanced replication scenarios: promotion, churn races, resumption."""

import random


from repro.core import LSVDConfig, LSVDVolume
from repro.core.replication import Replicator
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def make_pair():
    src = InMemoryObjectStore()
    dst = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(src, "vd", 32 * MiB, DiskImage(2 * MiB), cfg)
    return src, dst, cfg, vol


def test_replica_promotion_and_divergence():
    """Promote the replica to a writable primary after 'losing' site A."""
    src, dst, cfg, vol = make_pair()
    rep = Replicator(src, dst, "vd", min_age=0.0)
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    rep.step(now=1.0)
    # site A burns down; promote the replica (destructive open is fine)
    promoted = LSVDVolume.open(dst, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    promoted.write(0, b"PROMOTED".ljust(4096, b"\0"))
    promoted.drain()
    assert promoted.read(0, 4096).startswith(b"PROMOTED")
    for i in range(1, 64):
        assert promoted.read(i * 4096, 4096) == bytes([i + 1]) * 4096


def test_replication_under_continuous_churn_with_gc():
    """Objects appear and get GC-deleted while the replicator runs; the
    replica must stay mountable at every step."""
    src, dst, cfg, vol = make_pair()
    rep = Replicator(src, dst, "vd", min_age=1.0)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng = random.Random(5)
    for epoch in range(12):
        for _ in range(150):
            rec.write(rng.randrange(0, 1024) * 4096, 4096)
        vol.poll()
        rep.step(now=float(epoch))
        if epoch % 3 == 2 and dst.list("vd."):
            replica = LSVDVolume.open(
                dst, "vd", DiskImage(2 * MiB), cfg, cache_lost=True
            )
            verdict = PrefixChecker(rec).check(replica.read)
            assert verdict.ok_prefix, (epoch, verdict.problems[:2])


def test_replicator_resumes_without_duplicating():
    src, dst, cfg, vol = make_pair()
    rep1 = Replicator(src, dst, "vd", min_age=0.0)
    for i in range(32):
        vol.write(i * 4096, b"a" * 4096)
    vol.drain()
    rep1.step(now=1.0)
    puts_after_first = dst.stats.puts
    # a fresh replicator process takes over; everything is already there
    rep2 = Replicator(src, dst, "vd", min_age=0.0)
    rep2.step(now=2.0)
    # it re-copies (idempotent PUTs of identical immutable objects) or
    # skips; either way the replica stays correct and mountable
    replica = LSVDVolume.open(dst, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    assert replica.read(0, 4096) == b"a" * 4096


def test_drain_ships_young_objects():
    src, dst, cfg, vol = make_pair()
    rep = Replicator(src, dst, "vd", min_age=1e9)
    for i in range(32):
        vol.write(i * 4096, b"z" * 4096)
    vol.drain()
    rep.observe(now=0.0)
    assert rep.step(now=1.0) == []  # far too young
    copied = rep.drain(now=1.0)  # force everything across
    assert copied
    assert rep.min_age == 1e9  # restored afterwards
