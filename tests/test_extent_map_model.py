"""Differential test: the chunked extent map vs a naive per-address model.

Drives ``ExtentMap`` (and the seed flat-list baseline it is benchmarked
against) through thousands of seeded random update/remove/lookup
operations over an address space large enough to force many leaf chunks,
checking every few hundred ops that the map agrees *exactly* — address by
address — with a dict-of-blocks reference that cannot have extent-merge
or carve bugs.  Checkpoint/restore (``entries``/``from_entries``) and
crash-replay (restore an old checkpoint, replay the suffix, compare) are
exercised mid-run at multi-chunk sizes, not just at the end.
"""

import random

from repro.baselines.flat_extent_map import FlatExtentMap
from repro.core.extent_map import ExtentMap

SPAN = 8192  # address space: small enough to verify exhaustively,
N_OPS = 6000  # large enough to fragment into many 256-extent leaves


def _structural_invariants(m: ExtentMap) -> None:
    assert len(m._chunks) == len(m._lbas) == len(m._firsts)
    total = 0
    prev_end = None
    for chunk, lbas, first in zip(m._chunks, m._lbas, m._firsts):
        assert chunk, "empty leaf chunks must be removed"
        assert len(chunk) <= 2 * m._CHUNK_TARGET
        assert first == chunk[0].lba
        assert lbas == [e.lba for e in chunk]
        for e in chunk:
            if prev_end is not None:
                assert e.lba >= prev_end, "extents must be sorted and disjoint"
            prev_end = e.end
        total += len(chunk)
    assert total == len(m)


def _assert_matches_model(m: ExtentMap, model: dict) -> None:
    """Exact agreement with the per-address reference, both directions."""
    covered = {}
    for ext in m:
        for a in range(ext.lba, ext.end):
            covered[a] = (ext.target, ext.offset + (a - ext.lba))
    assert covered == model
    assert m.mapped_bytes() == len(model)


def _apply(m, model, op) -> None:
    kind, lba, length, target, offset = op
    if kind == "update":
        displaced = m.update(lba, length, target, offset)
        if model is not None:
            assert sum(d.length for d in displaced) == sum(
                1 for a in range(lba, lba + length) if a in model
            )
            for a in range(lba, lba + length):
                model[a] = (target, offset + (a - lba))
    else:
        displaced = m.remove(lba, length)
        if model is not None:
            for a in range(lba, lba + length):
                model.pop(a, None)


def _random_ops(rng: random.Random, n: int):
    ops = []
    for i in range(n):
        kind = "update" if rng.random() < 0.8 else "remove"
        lba = rng.randrange(0, SPAN - 64)
        length = rng.randint(1, 64)
        ops.append((kind, lba, length, rng.randrange(8), i * 1000))
    return ops


def test_model_differential_with_checkpoints_and_replay():
    rng = random.Random(0xC0FFEE)
    ops = _random_ops(rng, N_OPS)
    m = ExtentMap()
    flat = FlatExtentMap()
    model = {}
    max_chunks = 0
    checkpoint = None  # (entries, op index) for the crash-replay leg
    for i, op in enumerate(ops):
        _apply(m, model, op)
        _apply(flat, None, op)
        max_chunks = max(max_chunks, len(m._chunks))
        if (i + 1) % 500 == 0:
            _structural_invariants(m)
            _assert_matches_model(m, model)
            # the seed baseline must stay behaviourally identical: the
            # perf-smoke speedup gate is only honest if it races the
            # same semantics
            assert flat.entries() == m.entries()
            # checkpoint/restore round-trips at this (multi-chunk) size
            restored = ExtentMap.from_entries(m.entries())
            assert restored.entries() == m.entries()
            assert restored.mapped_bytes() == m.mapped_bytes()
            _structural_invariants(restored)
            if checkpoint is None and len(m._chunks) > 1:
                checkpoint = (m.entries(), i + 1)
    assert max_chunks > 1, "workload never exceeded one leaf chunk"
    _assert_matches_model(m, model)

    # crash-replay: restore the mid-run checkpoint, replay the remaining
    # ops on it, and require exact agreement with the never-crashed map
    assert checkpoint is not None
    entries, replay_from = checkpoint
    replayed = ExtentMap.from_entries(entries)
    assert len(replayed._chunks) > 1
    for op in ops[replay_from:]:
        _apply(replayed, None, op)
    assert replayed.entries() == m.entries()
    assert replayed.mapped_bytes() == m.mapped_bytes()
    _structural_invariants(replayed)


def test_model_differential_second_seed_heavier_removals():
    """A removal-heavy mix drives the fold path; same exactness bar."""
    rng = random.Random(1234)
    m = ExtentMap()
    model = {}
    for i in range(5000):
        kind = "update" if rng.random() < 0.55 else "remove"
        lba = rng.randrange(0, SPAN - 128)
        length = rng.randint(1, 128)
        _apply(m, model, (kind, lba, length, rng.randrange(4), i * 1000))
        if (i + 1) % 1000 == 0:
            _structural_invariants(m)
            _assert_matches_model(m, model)
    _assert_matches_model(m, model)
