"""Tests for the timed runtimes: LSVD, RBD, and bcache-over-RBD stacks.

These verify mechanics and the paper's qualitative relationships at small
scale; the full parameter grids live in benchmarks/.
"""

import pytest

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.hdd import HDD, HDDSpec
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import (
    BcacheRBDRuntime,
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
    run_fio,
    run_jobs,
)
from repro.sim import Simulator
from repro.workloads import FioJob
from repro.workloads.base import FLUSH, IOOp

GiB = 1 << 30
MiB = 1 << 20


def ssd_cluster(sim, servers=4, per=8):
    return StorageCluster(
        sim, servers, per, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )


def hdd_cluster(sim, servers=9, per=7):
    return StorageCluster(
        sim, servers, per, lambda s, n: HDD(s, HDDSpec.sas_10k(), name=n)
    )


def lsvd_world(cache=4 * GiB, volume=1 * GiB, cluster_fn=ssd_cluster, **kw):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    dev = LSVDRuntime(
        sim, machine, backend, volume, cache, LSVDConfig(), name="vd", **kw
    )
    return sim, machine, cluster, backend, dev


def bcache_world(cache=4 * GiB, volume=1 * GiB, cluster_fn=ssd_cluster, **kw):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    rbd = RBDRuntime(sim, machine, cluster)
    dev = BcacheRBDRuntime(sim, machine, rbd, cache_size=cache, **kw)
    return sim, machine, cluster, rbd, dev


# -- basic mechanics -----------------------------------------------------------


def test_lsvd_write_completes_and_counts():
    sim, m, cluster, backend, dev = lsvd_world()
    result = run_fio(sim, dev, FioJob(rw="randwrite", bs=4096, iodepth=8, size=1 * GiB), 0.5)
    assert result.ops > 1000
    assert dev.client_writes >= result.ops


def test_lsvd_destages_batches_to_backend():
    sim, m, cluster, backend, dev = lsvd_world()
    run_fio(sim, dev, FioJob(rw="randwrite", bs=16384, iodepth=16, size=1 * GiB), 1.0)
    sim.run(until=sim.now + 3.0)  # let destage drain
    assert backend.puts > 0
    assert backend.bytes_put > 0
    # objects are batch-sized, not write-sized
    assert backend.bytes_put / backend.puts > 1 * MiB


def test_lsvd_backpressure_when_cache_small():
    """A tiny write cache throttles the client to backend speed."""
    sim_s, *_rest, dev_s = lsvd_world(cache=64 * MiB)
    small = run_fio(sim_s, dev_s, FioJob(rw="randwrite", bs=65536, iodepth=32, size=1 * GiB), 2.0)
    sim_l, *_rest, dev_l = lsvd_world(cache=8 * GiB)
    large = run_fio(sim_l, dev_l, FioJob(rw="randwrite", bs=65536, iodepth=32, size=1 * GiB), 2.0)
    assert small.mbps < large.mbps


def test_lsvd_read_hits_stay_local():
    sim, m, cluster, backend, dev = lsvd_world(read_hit_rate=1.0)
    run_fio(sim, dev, FioJob(rw="randread", bs=4096, iodepth=8, size=1 * GiB), 0.5)
    assert backend.gets == 0


def test_lsvd_read_misses_go_to_backend():
    sim, m, cluster, backend, dev = lsvd_world(read_hit_rate=0.0)
    result = run_fio(sim, dev, FioJob(rw="randread", bs=4096, iodepth=8, size=1 * GiB), 0.5)
    assert backend.gets == pytest.approx(result.ops, rel=0.1)


def test_lsvd_miss_latency_dominated_by_s3():
    """Table 6: the S3 range GET (~5.9 ms) dominates a read miss."""
    sim, m, cluster, backend, dev = lsvd_world(read_hit_rate=0.0)
    result = run_fio(sim, dev, FioJob(rw="randread", bs=4096, iodepth=1, size=1 * GiB), 1.0)
    assert result.mean_latency > 5e-3


def test_lsvd_barrier_is_one_flush():
    sim, m, cluster, backend, dev = lsvd_world()
    done = dev.submit(IOOp(FLUSH))
    sim.run_until_event(done)
    assert m.ssd.stats.flushes == 1


def test_rbd_write_generates_six_backend_ios():
    sim = Simulator()
    m = ClientMachine(sim)
    cluster = ssd_cluster(sim)
    dev = RBDRuntime(sim, m, cluster)
    result = run_fio(sim, dev, FioJob(rw="randwrite", bs=16384, iodepth=4, size=1 * GiB), 0.5)
    totals = cluster.totals()
    assert totals.writes == pytest.approx(6 * result.ops, rel=0.05)


def test_bcache_write_is_cached_not_replicated():
    sim, m, cluster, rbd, dev = bcache_world()
    result = run_fio(sim, dev, FioJob(rw="randwrite", bs=4096, iodepth=8, size=1 * GiB), 0.3)
    assert result.ops > 0
    assert cluster.totals().writes == 0  # write-back paused under load


def test_bcache_writeback_resumes_when_idle():
    sim, m, cluster, rbd, dev = bcache_world()
    run_fio(sim, dev, FioJob(rw="randwrite", bs=4096, iodepth=8, size=64 * MiB), 0.2)
    dirty = dev.dirty_bytes
    assert dirty > 0
    sim.run(until=sim.now + 30.0)  # idle: write-back drains
    assert dev.dirty_bytes < dirty
    assert cluster.totals().writes > 0


def test_bcache_barrier_costs_metadata_writes():
    sim, m, cluster, rbd, dev = bcache_world()
    done = dev.submit(IOOp("write", 0, 4096))
    sim.run_until_event(done)
    writes_before = m.ssd.stats.writes
    flushes_before = m.ssd.stats.flushes
    done = dev.submit(IOOp(FLUSH))
    sim.run_until_event(done)
    assert m.ssd.stats.writes > writes_before  # btree metadata
    assert m.ssd.stats.flushes > flushes_before


# -- the paper's qualitative relationships ----------------------------------


def test_fig6_lsvd_faster_small_random_writes():
    """LSVD 20-30% faster than bcache for small in-cache random writes."""
    for bs in (4096, 16384):
        sim_l, *_r, dev_l = lsvd_world(cache=8 * GiB)
        lsvd = run_fio(sim_l, dev_l, FioJob(rw="randwrite", bs=bs, iodepth=16, size=1 * GiB), 1.0, warmup=0.2)
        sim_b, *_r, dev_b = bcache_world(cache=8 * GiB)
        bc = run_fio(sim_b, dev_b, FioJob(rw="randwrite", bs=bs, iodepth=16, size=1 * GiB), 1.0, warmup=0.2)
        assert lsvd.iops > bc.iops * 1.05, f"bs={bs}"
        assert lsvd.iops < bc.iops * 1.8, f"bs={bs}"


def test_fig6_lsvd_slower_large_writes_high_qd():
    """...but falls behind for 64 KiB writes at depth 32 (destage reads
    share the device)."""
    sim_l, *_r, dev_l = lsvd_world(cache=8 * GiB)
    lsvd = run_fio(sim_l, dev_l, FioJob(rw="randwrite", bs=65536, iodepth=32, size=1 * GiB), 1.0, warmup=0.2)
    sim_b, *_r, dev_b = bcache_world(cache=8 * GiB)
    bc = run_fio(sim_b, dev_b, FioJob(rw="randwrite", bs=65536, iodepth=32, size=1 * GiB), 1.0, warmup=0.2)
    assert lsvd.mbps < bc.mbps


def test_fig7_lsvd_reads_behind_at_high_qd():
    """Random reads: parity at low depth, LSVD up to ~30% behind at 32."""
    sim_l, *_r, dev_l = lsvd_world()
    l_hi = run_fio(sim_l, dev_l, FioJob(rw="randread", bs=4096, iodepth=32, size=1 * GiB), 0.7, warmup=0.2)
    sim_b, *_r, dev_b = bcache_world()
    b_hi = run_fio(sim_b, dev_b, FioJob(rw="randread", bs=4096, iodepth=32, size=1 * GiB), 0.7, warmup=0.2)
    assert 0.6 < l_hi.iops / b_hi.iops < 0.95

    sim_l, *_r, dev_l = lsvd_world()
    l_lo = run_fio(sim_l, dev_l, FioJob(rw="randread", bs=4096, iodepth=4, size=1 * GiB), 0.7, warmup=0.2)
    sim_b, *_r, dev_b = bcache_world()
    b_lo = run_fio(sim_b, dev_b, FioJob(rw="randread", bs=4096, iodepth=4, size=1 * GiB), 0.7, warmup=0.2)
    assert l_lo.iops / b_lo.iops > 0.85


def test_multi_volume_load_shares_client(capsys):
    """Fig 12 mechanics: volumes on one machine share CPU and SSD."""
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = hdd_cluster(sim)
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    devices = [
        LSVDRuntime(sim, machine, backend, 1 * GiB, 2 * GiB, LSVDConfig(), name=f"vd{i}")
        for i in range(4)
    ]
    jobs = [FioJob(rw="randwrite", bs=16384, iodepth=32, size=1 * GiB, seed=i) for i in range(4)]
    results = run_jobs(sim, list(zip(devices, jobs)), duration=1.0, warmup=0.2)
    total_iops = sum(r.iops for r in results)
    single_sim = Simulator()
    single_machine = ClientMachine(single_sim)
    single_cluster = hdd_cluster(single_sim)
    single_backend = SimulatedObjectStore(single_sim, single_cluster, single_machine.network)
    single_dev = LSVDRuntime(single_sim, single_machine, single_backend, 1 * GiB, 2 * GiB, LSVDConfig(), name="vd")
    single = run_fio(single_sim, single_dev, FioJob(rw="randwrite", bs=16384, iodepth=32, size=1 * GiB), 1.0, warmup=0.2)
    # 4 volumes scale sub-linearly (client saturation), not 4x
    assert total_iops < single.iops * 4
    assert total_iops > single.iops * 0.8


def test_lsvd_backend_iops_far_below_client_iops():
    """Fig 13 mechanics: backend device writes per client write ~0.25-0.5,
    vs RBD's 6."""
    sim, m, cluster, backend, dev = lsvd_world(cluster_fn=hdd_cluster, cache=8 * GiB)
    result = run_fio(sim, dev, FioJob(rw="randwrite", bs=16384, iodepth=32, size=1 * GiB), 2.0)
    sim.run(until=sim.now + 5.0)
    totals = cluster.totals()
    amplification = totals.writes / max(dev.client_writes, 1)
    assert amplification < 1.0  # paper: 0.25
