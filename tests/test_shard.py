"""repro.shard: routing, scatter-gather, and sharded crash recovery."""

import json

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.naming import object_name, stream_seqs
from repro.core.replication import Replicator
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore
from repro.shard import (
    MANIFEST_NAME,
    ShardedObjectStore,
    ShardRouter,
    open_directory_store,
    sharded_directory_store,
)

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=8)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def sharded_pair(n_shards):
    """A sharded facade over unsettled shards, plus the settled view.

    ``store`` is what the volume writes through; ``settled`` sees only
    the PUTs that completed — the store a recovering client would mount.
    """
    inners = [InMemoryObjectStore() for _ in range(n_shards)]
    store = ShardedObjectStore(
        [UnsettledObjectStore(inner) for inner in inners],
        ShardRouter(n_shards),
    )
    settled = ShardedObjectStore(list(inners), ShardRouter(n_shards))
    return inners, store, settled


# ---------------------------------------------------------------------------
# router
# ---------------------------------------------------------------------------


def test_round_robin_covers_all_shards_evenly():
    router = ShardRouter(4)
    placements = [router.shard_of_seq(seq) for seq in range(1, 401)]
    assert placements[:8] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(placements.count(i) == 100 for i in range(4))


def test_hash_layout_is_deterministic_and_in_range():
    a = ShardRouter(8, "hash")
    b = ShardRouter(8, "hash")
    for seq in range(1, 500):
        assert a.shard_of_seq(seq) == b.shard_of_seq(seq)
        assert 0 <= a.shard_of_seq(seq) < 8
    # reasonably uniform: every shard owns some of 500 sequences
    counts = [0] * 8
    for seq in range(1, 501):
        counts[a.shard_of_seq(seq)] += 1
    assert min(counts) > 20


def test_stream_and_non_stream_names_route_consistently():
    router = ShardRouter(3)
    assert router.shard_of_name(object_name("vol", 5)) == router.shard_of_seq(5)
    # the mutable superblock has exactly one stable home
    assert router.shard_of_name("vol.super") == router.shard_of_name("vol.super")


def test_router_manifest_round_trip():
    router = ShardRouter(5, "hash")
    clone = ShardRouter.from_manifest(
        json.loads(json.dumps(router.describe()))
    )
    assert clone.n_shards == 5
    assert clone.layout.name == "hash"


def test_router_rejects_bad_configuration():
    with pytest.raises(ValueError):
        ShardRouter(0)
    with pytest.raises(ValueError):
        ShardRouter(2, "striped-mirror")


# ---------------------------------------------------------------------------
# sharded object store
# ---------------------------------------------------------------------------


def test_put_get_delete_land_on_owning_shard():
    shards = [InMemoryObjectStore() for _ in range(3)]
    store = ShardedObjectStore(shards)
    for seq in range(1, 10):
        store.put(object_name("v", seq), bytes([seq]))
    for seq in range(1, 10):
        owner = store.router.shard_of_seq(seq)
        name = object_name("v", seq)
        assert shards[owner].exists(name)
        assert all(
            not shards[i].exists(name) for i in range(3) if i != owner
        )
        assert store.get(name) == bytes([seq])
    store.delete(object_name("v", 4))
    assert not store.exists(object_name("v", 4))


def test_list_scatter_gathers_the_global_stream():
    shards = [InMemoryObjectStore() for _ in range(4)]
    store = ShardedObjectStore(shards)
    for seq in range(1, 33):
        store.put(object_name("v", seq), b"x")
    store.put("other.00000001", b"y")
    names = store.list("v.")
    assert stream_seqs(names, "v") == list(range(1, 33))
    # sorted union, exactly once each
    assert names == sorted(set(names))


def test_merged_stats_and_per_shard_metrics():
    shards = [InMemoryObjectStore() for _ in range(2)]
    store = ShardedObjectStore(shards)
    for seq in range(1, 5):
        store.put(object_name("v", seq), b"abcd")
    store.get(object_name("v", 1))
    merged = store.stats
    assert merged.puts == 4
    assert merged.bytes_put == 16
    assert merged.gets == 1
    assert sum(s.puts for s in store.shard_stats()) == 4
    assert store.obs.value("shard.puts") == 4
    assert store.obs.value("shard.0.puts") == 2
    assert store.obs.value("shard.1.puts") == 2
    assert store.obs.value("shard.put_imbalance") == 1.0


def test_cross_shard_copy_settles_immediately():
    inners, store, settled = sharded_pair(3)
    h = store.put(object_name("v", 1), b"payload")
    store.settle(h)
    # find a destination owned by a different shard
    src_shard = store.router.shard_of_seq(1)
    dst_seq = next(
        seq for seq in range(2, 10) if store.router.shard_of_seq(seq) != src_shard
    )
    store.copy(object_name("v", 1), object_name("v", dst_seq))
    assert store.in_flight == 0  # a copy is not a trackable client PUT
    assert settled.get(object_name("v", dst_seq)) == b"payload"


def test_sharded_store_rejects_router_mismatch():
    with pytest.raises(ValueError):
        ShardedObjectStore([InMemoryObjectStore()] * 2, ShardRouter(3))


# ---------------------------------------------------------------------------
# recovery across shards
# ---------------------------------------------------------------------------


def test_hole_on_one_shard_strands_later_objects_on_all_shards():
    """Losing one shard's PUT cuts the *global* prefix: later objects on
    every other shard are stranded and deleted by recovery."""
    n_shards = 4
    inners, store, settled = sharded_pair(n_shards)
    cfg = small_config(checkpoint_interval=1000)
    image = DiskImage(8 * MiB)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    store.settle_all()
    for i in range(80):  # five 64K batches
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.flush()
    handles = store.pending_handles()
    assert len(handles) == 5
    # the five batch PUTs (seqs 2-6 after the create checkpoint) went to
    # every shard of the round-robin ring
    assert len({shard for shard, _h in handles}) == n_shards
    # settle all but the third batch (seq 4): a hole on exactly one shard
    hole_shard = store.router.shard_of_seq(4)
    hole_name = object_name("vd", 4)
    lost = next(
        (hole_shard, h)
        for h, put in store.shards[hole_shard]._pending.items()
        if put.name == hole_name
    )
    for handle in handles:
        if handle == lost:
            continue
        store.settle(handle)
        vol.settle_put(handle)
    before = stream_seqs(settled.list("vd."), "vd")
    store.crash()
    image.lose()
    vol2 = LSVDVolume.open(
        settled, "vd", DiskImage(2 * MiB), cfg, cache_lost=True
    )
    # prefix = batches 1-2; writes of batches 4-5 must be gone
    for i in range(32):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096
    for i in range(48, 80):
        assert vol2.read(i * 4096, 4096) == b"\x00" * 4096
    # the stranded objects were deleted from whichever shards held them:
    # what remains is exactly the consecutive global prefix
    after = stream_seqs(settled.list("vd."), "vd")
    assert after == list(range(1, len(after) + 1))
    assert max(before) > max(after)


@pytest.mark.parametrize("n_shards", [2, 3])
def test_sharded_volume_survives_write_recover_cycles(n_shards):
    """Plain (settled) sharded volume: write, drain, remount, verify."""
    shards = [InMemoryObjectStore() for _ in range(n_shards)]
    store = ShardedObjectStore(shards)
    cfg = small_config()
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    model = {}
    for i in range(120):
        lba = (i * 7 % 256) * 4096
        data = bytes([i % 255 + 1]) * 4096
        vol.write(lba, data)
        model[lba] = data
        if i % 40 == 39:
            vol.drain()
            vol = LSVDVolume.open(
                store, "vd", DiskImage(2 * MiB), cfg, cache_lost=True
            )
    for lba, expected in model.items():
        assert vol.read(lba, 4096) == expected
    # the stream really is spread: every shard holds stream objects
    assert all(any(s.list("vd.")) for s in shards)


def test_gc_deletes_reach_the_owning_shard():
    """Overwrite-heavy traffic makes garbage; GC must delete victims on
    whichever shard holds them, and the volume stays readable."""
    shards = [InMemoryObjectStore() for _ in range(3)]
    store = ShardedObjectStore(shards)
    cfg = small_config(checkpoint_interval=4)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(4 * MiB), cfg)
    data = {}
    for round_ in range(10):  # overwrites: GC fires via the watermark
        for i in range(32):  # hammer the same 128 KiB window
            payload = bytes([(round_ * 32 + i) % 255 + 1]) * 4096
            vol.write(i * 4096, payload)
            data[i * 4096] = payload
        vol.drain()
    for lba, expected in data.items():
        assert vol.read(lba, 4096) == expected
    assert store.stats.deletes > 0


# ---------------------------------------------------------------------------
# replication across shard layouts
# ---------------------------------------------------------------------------


def test_replication_between_differently_sharded_stores():
    """Placement is a per-store concern: a 3-shard source replicates to a
    2-shard target and the replica mounts consistently."""
    source = ShardedObjectStore([InMemoryObjectStore() for _ in range(3)])
    target = ShardedObjectStore([InMemoryObjectStore() for _ in range(2)])
    cfg = small_config()
    vol = LSVDVolume.create(source, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    rep = Replicator(source, target, "vd", min_age=0.0)
    rep.step(now=1.0)
    replica = LSVDVolume.open(target, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    for i in range(64):
        assert replica.read(i * 4096, 4096) == bytes([i + 1]) * 4096


# ---------------------------------------------------------------------------
# directory-backed construction
# ---------------------------------------------------------------------------


def test_sharded_directory_store_persists_layout(tmp_path):
    root = tmp_path / "bucket"
    store = sharded_directory_store(root, 4, "hash")
    store.put(object_name("v", 1), b"one")
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    assert manifest == {"layout": "hash", "n_shards": 4}
    # a later mount reads the manifest back and routes identically
    again = sharded_directory_store(root)
    assert again.router.n_shards == 4
    assert again.router.layout.name == "hash"
    assert again.get(object_name("v", 1)) == b"one"


def test_sharded_directory_store_rejects_conflicts(tmp_path):
    sharded_directory_store(tmp_path / "a", 2)
    with pytest.raises(ValueError):
        sharded_directory_store(tmp_path / "a", 4)
    # refusing to silently shard an existing plain root
    plain = tmp_path / "plain"
    plain.mkdir()
    (plain / "something").write_bytes(b"x")
    with pytest.raises(ValueError):
        sharded_directory_store(plain, 2)


def test_open_directory_store_detects_sharding(tmp_path):
    sharded_directory_store(tmp_path / "s", 2)
    sharded = open_directory_store(tmp_path / "s")
    assert isinstance(sharded, ShardedObjectStore)
    plain = open_directory_store(tmp_path / "p")
    assert not isinstance(plain, ShardedObjectStore)
