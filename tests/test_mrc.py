"""Tests for miss-ratio-curve construction."""

import pytest

from repro.analysis.mrc import compute_mrc
from repro.workloads import TRACE_PRESETS, CloudPhysicsTrace


def test_single_block_repeated():
    mrc = compute_mrc([(0, 4096)] * 10)
    assert mrc.total_accesses == 10
    assert mrc.cold_misses == 1
    # one block: any cache of >= 1 block hits everything after the cold miss
    assert mrc.miss_ratio(1) == pytest.approx(0.1)


def test_cyclic_scan_defeats_small_lru():
    """The classic LRU pathology: a loop of N blocks misses 100% with any
    cache smaller than N and hits (after cold) with cache >= N."""
    n = 8
    accesses = [(i * 4096, 4096) for i in range(n)] * 5
    mrc = compute_mrc(accesses)
    assert mrc.miss_ratio(n - 1) == pytest.approx(1.0)
    assert mrc.miss_ratio(n) == pytest.approx(n / (n * 5))  # only cold misses


def test_miss_ratio_monotone_in_cache_size():
    import random

    rng = random.Random(1)
    accesses = [(rng.randrange(0, 64) * 4096, 4096) for _ in range(2000)]
    mrc = compute_mrc(accesses)
    curve = mrc.curve([1, 2, 4, 8, 16, 32, 64, 128])
    ratios = [r for _s, r in curve]
    assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))
    # with the full footprint cached, only cold misses remain
    assert curve[-1][1] == pytest.approx(64 / 2000, rel=0.01)


def test_multi_block_accesses_split():
    mrc = compute_mrc([(0, 16384)])  # touches 4 blocks
    assert mrc.total_accesses == 4
    assert mrc.cold_misses == 4


def test_working_set_sizing():
    n = 32
    accesses = [(i * 4096, 4096) for i in range(n)] * 10
    mrc = compute_mrc(accesses)
    assert mrc.working_set_blocks(target_miss_ratio=0.15) == n


def test_empty_trace():
    mrc = compute_mrc([])
    assert mrc.miss_ratio(100) == 0.0
    assert mrc.total_accesses == 0


def test_hot_cold_structure_shows_knee():
    """A skewed workload's MRC has a knee at the hot-set size."""
    import random

    rng = random.Random(2)
    accesses = []
    for _ in range(4000):
        if rng.random() < 0.9:
            accesses.append((rng.randrange(0, 16) * 4096, 4096))  # hot 16
        else:
            accesses.append((rng.randrange(16, 512) * 4096, 4096))
    mrc = compute_mrc(accesses)
    at_hotset = mrc.miss_ratio(16)
    tiny = mrc.miss_ratio(2)
    assert at_hotset < 0.35
    assert tiny > 0.5


def test_cloudphysics_trace_mrc_is_computable():
    trace = CloudPhysicsTrace(TRACE_PRESETS["w66"], scale=1 / 2048, seed=1)
    mrc = compute_mrc(trace.writes())
    assert mrc.total_accesses > 0
    # a cache as big as the footprint leaves only cold misses
    footprint = max(mrc.reuse_histogram, default=0) + 1
    assert mrc.miss_ratio(footprint) == pytest.approx(
        mrc.cold_misses / mrc.total_accesses
    )
