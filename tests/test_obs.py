"""Tests for repro.obs: registry, histograms, trace, exporters, wiring."""

import json
import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore
from repro.obs import (
    EVENT_TYPES,
    Histogram,
    Registry,
    TimedStore,
    Trace,
    bind_metrics,
    gauge_field,
    metric_field,
    metrics_json,
    prometheus_text,
    registry_csv,
    write_bench_json,
)

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=8)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_volume(size=16 * MiB, cache=4 * MiB, store=None, obs=None, **kw):
    store = store if store is not None else InMemoryObjectStore()
    image = DiskImage(cache, name="cache")
    vol = LSVDVolume.create(store, "vd", size, image, small_config(**kw), obs=obs)
    return store, image, vol


# ---------------------------------------------------------------------------
# histogram edge cases
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_empty_reports_zero(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.snapshot()["p99"] == 0.0

    def test_single_sample_is_exact_at_every_percentile(self):
        h = Histogram("h")
        h.observe(0.0037)
        for p in (0, 50, 95, 99, 100):
            assert h.percentile(p) == pytest.approx(0.0037)

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(50.0)  # beyond the last bound
        assert h.percentile(99) == 50.0
        assert h.max == 50.0

    def test_percentiles_are_clamped_into_min_max(self):
        h = Histogram("h", buckets=[1.0, 10.0])
        h.observe(3.0)
        h.observe(4.0)
        # bucket upper bound is 10.0 but nothing above 4.0 was seen
        assert h.percentile(99) <= 4.0
        assert h.percentile(1) >= 3.0

    def test_merged_count_accounting(self):
        h = Histogram("h")
        h.observe(0.001, count=8)
        assert h.count == 8
        assert h.sum == pytest.approx(0.008)
        h.observe(0.001, count=0)  # no-op
        assert h.count == 8

    def test_reset_clears_but_keeps_bounds(self):
        h = Histogram("h", buckets=[1.0])
        h.observe(0.5)
        h.reset()
        assert h.count == 0 and h.min is None and h.sum == 0.0
        h.observe(0.25)
        assert h.percentile(50) == 0.25

    def test_rejects_empty_buckets_and_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        obs = Registry()
        assert obs.counter("a.b") is obs.counter("a.b")
        assert obs.histogram("a.h") is obs.histogram("a.h")

    def test_kind_mismatch_raises(self):
        obs = Registry()
        obs.counter("a.b")
        with pytest.raises(TypeError):
            obs.gauge("a.b")

    def test_snapshot_is_sorted_and_expands_histograms(self):
        obs = Registry()
        obs.counter("z.last").inc(3)
        obs.gauge("a.first").set(7)
        obs.histogram("m.mid").observe(1.0)
        snap = obs.snapshot()
        assert list(snap) == ["a.first", "m.mid", "z.last"]
        assert snap["z.last"] == 3
        assert snap["m.mid"]["count"] == 1

    def test_reset_zeroes_values_but_keeps_names(self):
        obs = Registry()
        obs.counter("a").inc(5)
        obs.trace.emit("crash")
        obs.reset()
        assert obs.value("a") == 0
        assert "a" in obs
        assert len(obs.trace) == 0

    def test_value_defaults_for_missing_and_histogram(self):
        obs = Registry()
        obs.histogram("h").observe(1.0)
        assert obs.value("nope", default=-1) == -1
        assert obs.value("h", default=-1) == -1


class TestMetricFields:
    class Holder:
        hits = metric_field("t.hits")
        level = gauge_field("t.level")

        def __init__(self, obs):
            self.obs = obs
            bind_metrics(self)

    def test_bind_registers_all_fields_at_zero(self):
        obs = Registry()
        self.Holder(obs)
        assert obs.names() == ["t.hits", "t.level"]

    def test_increment_and_assignment_write_through(self):
        obs = Registry()
        holder = self.Holder(obs)
        holder.hits += 2
        holder.hits += 1
        holder.level = 10
        holder.level = max(0, holder.level - 4)
        assert obs.value("t.hits") == 3
        assert obs.value("t.level") == 6
        assert holder.hits == 3

    def test_two_holders_one_registry_share_the_metric(self):
        obs = Registry()
        a, b = self.Holder(obs), self.Holder(obs)
        a.hits += 1
        b.hits += 1
        assert a.hits == b.hits == 2


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------


class TestTrace:
    def test_rejects_unknown_event_type(self):
        with pytest.raises(ValueError):
            Trace().emit("made_up_event")

    def test_extra_types_extend_the_catalogue(self):
        t = Trace(extra_types=["custom"])
        assert t.emit("custom", x=1) is not None

    def test_logical_clock_is_monotonic_steps(self):
        t = Trace()
        events = [t.emit("crash") for _ in range(3)]
        assert [e.ts for e in events] == [0.0, 1.0, 2.0]

    def test_wired_clock_stamps_events(self):
        now = {"t": 1.5}
        t = Trace(clock=lambda: now["t"])
        assert t.emit("crash").ts == 1.5
        now["t"] = 2.5
        assert t.emit("crash").ts == 2.5

    def test_ring_buffer_drops_oldest_and_counts(self):
        t = Trace(capacity=2)
        t.emit("crash", n=1)
        t.emit("crash", n=2)
        t.emit("crash", n=3)
        assert t.dropped == 1
        assert [dict(e.fields)["n"] for e in t.events()] == [2, 3]

    def test_disabled_trace_records_nothing(self):
        t = Trace(enabled=False)
        assert t.emit("crash") is None
        assert len(t) == 0

    def test_jsonl_is_compact_sorted_and_limitable(self):
        t = Trace()
        t.emit("crash", b=1, a=2)
        line = t.to_jsonl().strip()
        assert line == '{"a":2,"b":1,"ts":0.0,"type":"crash"}'
        t.emit("crash", n=2)
        assert t.to_jsonl(limit=1).count("\n") == 1

    def test_counts_by_type(self):
        t = Trace()
        t.emit("crash")
        t.emit("checkpoint")
        t.emit("crash")
        assert t.counts() == {"checkpoint": 1, "crash": 2}


# ---------------------------------------------------------------------------
# stack wiring: one registry per stack, deterministic trace
# ---------------------------------------------------------------------------


class TestStackWiring:
    def test_volume_stack_shares_one_registry(self):
        obs = Registry()
        _, _, vol = make_volume(obs=obs)
        assert vol.obs is obs
        assert vol.bs.obs is obs
        assert vol.wc.obs is obs
        assert vol.rc.obs is obs
        assert vol.gc.obs is obs

    def test_volume_metrics_report_the_evaluation_numbers(self):
        obs = Registry()
        _, _, vol = make_volume(obs=obs)
        state = 1
        for i in range(256):
            # scattered overwrites leave live extents in every object, so
            # GC victims have something to relocate
            state = (state * 48271) % 2147483647
            vol.write((state % 64) * 4096, bytes([i % 255 + 1]) * 4096)
        vol.flush()
        vol.drain()
        vol.read(0, 4096)
        assert obs.value("volume.writes") == 256
        assert obs.value("store.client_bytes") > 0
        assert obs.value("wc.bytes_logged") >= obs.value("wc.client_bytes")
        # overwrite-heavy workload must have triggered relocation
        assert obs.value("gc.bytes_relocated") > 0
        assert obs.trace.events("gc_round")
        assert obs.trace.events("write_commit")

    def _run_traced(self):
        obs = Registry()
        _, _, vol = make_volume(obs=obs)
        for i in range(48):
            vol.write((i % 6) * 4096, bytes([i + 1]) * 4096)
            if i % 16 == 15:
                vol.flush()
        vol.close()
        return obs.trace.to_jsonl()

    def test_trace_determinism_golden(self):
        """Two identical runs serialise to byte-identical JSONL."""
        first, second = self._run_traced(), self._run_traced()
        assert first == second
        assert first  # non-empty
        types = {json.loads(line)["type"] for line in first.splitlines()}
        assert types <= EVENT_TYPES
        assert "backend_put" in types

    def test_recovery_replay_events_match_replayed_count(self):
        obs = Registry()
        # batch far larger than the writes: records stay cache-only
        store, image, vol = make_volume(obs=obs, batch_size=8 * MiB)
        for i in range(12):
            vol.write(i * 4096, bytes([i + 1]) * 4096)
        vol.flush()
        image.crash(rng=random.Random(7), survive_probability=1.0, allow_torn=False)
        obs2 = Registry()
        LSVDVolume.open(store, "vd", image, small_config(batch_size=8 * MiB), obs=obs2)
        replays = obs2.trace.events("recovery_replay")
        [complete] = obs2.trace.events("recovery_complete")
        done = dict(complete.fields)
        assert done["cache_lost"] is False
        assert done["replayed"] == len(replays) > 0

    def test_cache_lost_mount_traces_zero_replay(self):
        store, _, vol = make_volume()
        vol.write(0, b"x" * 4096)
        vol.drain()
        obs2 = Registry()
        LSVDVolume.open(
            store, "vd", DiskImage(4 * MiB), small_config(), cache_lost=True, obs=obs2
        )
        [complete] = obs2.trace.events("recovery_complete")
        assert dict(complete.fields) == {"cache_lost": True, "replayed": 0}

    def test_unsettled_store_crash_emits_trace_event(self):
        obs = Registry()
        store = UnsettledObjectStore(InMemoryObjectStore(), obs=obs)
        store.put("vd.00000001", b"a")
        store.put("vd.00000002", b"b")
        store.crash()
        [event] = obs.trace.events("crash")
        assert dict(event.fields) == {"lost_puts": 2}


# ---------------------------------------------------------------------------
# timed store
# ---------------------------------------------------------------------------


class TestTimedStore:
    def test_latencies_land_in_shared_registry(self):
        obs = Registry()
        timed = TimedStore(InMemoryObjectStore(), obs)
        timed.put("k", b"x" * 1000)
        timed.get("k")
        timed.delete("k")
        assert obs.histogram("backend.put_latency_s").count == 1
        assert obs.histogram("backend.get_latency_s").count == 1
        assert obs.histogram("backend.delete_latency_s").count == 1

    def test_clock_advances_by_request_plus_transfer(self):
        timed = TimedStore(
            InMemoryObjectStore(), request_latency=0.001, bandwidth_bps=1e6
        )
        timed.put("k", b"x" * 1000)  # 1 ms + 1 ms transfer
        assert timed.now() == pytest.approx(0.002)
        timed.delete("k")  # request only
        assert timed.now() == pytest.approx(0.003)

    def test_wraps_a_volume_and_times_its_backend(self):
        obs = Registry()
        timed = TimedStore(InMemoryObjectStore(), obs)
        obs.trace.clock = timed.now
        image = DiskImage(4 * MiB)
        vol = LSVDVolume.create(timed, "vd", 16 * MiB, image, small_config(), obs=obs)
        for i in range(32):
            vol.write(i * 4096, bytes([i + 1]) * 4096)
        vol.close()
        put = obs.histogram("backend.put_latency_s")
        assert put.count > 0
        assert put.percentile(99) > 0.0
        # trace timestamps come from the cost-model clock, not step counts
        assert obs.trace.events("backend_put")[-1].ts > 0.0


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def _registry(self):
        obs = Registry()
        obs.counter("store.puts", help="objects PUT").inc(4)
        obs.gauge("wc.occupancy_bytes").set(512)
        obs.histogram("backend.put_latency_s", buckets=[0.001, 0.01]).observe(0.005)
        return obs

    def test_prometheus_text(self):
        text = prometheus_text(self._registry())
        assert "# HELP store_puts objects PUT" in text
        assert "store_puts 4" in text
        assert 'backend_put_latency_s_bucket{le="0.01"} 1' in text
        assert 'backend_put_latency_s_bucket{le="+Inf"} 1' in text
        assert "backend_put_latency_s_count 1" in text

    def test_csv_expands_histograms(self):
        text = registry_csv(self._registry())
        lines = text.strip().splitlines()
        assert lines[0] == "metric,value"
        assert "store.puts,4" in lines
        assert any(line.startswith("backend.put_latency_s.p99,") for line in lines)

    def test_json_round_trips_and_is_sorted(self):
        text = metrics_json(self._registry(), extra={"volume": "vd"})
        doc = json.loads(text)
        assert doc["volume"] == "vd"
        assert doc["metrics"]["store.puts"] == 4
        assert metrics_json(self._registry()) == metrics_json(self._registry())

    def test_write_bench_json(self, tmp_path):
        path = write_bench_json(
            "smoke", self._registry(), figures={"wa": 1.25}, out_dir=tmp_path
        )
        assert path.name == "BENCH_smoke.json"
        doc = json.loads(path.read_text())
        assert doc["bench"] == "smoke"
        assert doc["figures"]["wa"] == 1.25
        assert "metrics" in doc
