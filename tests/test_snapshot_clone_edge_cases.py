"""Edge cases for snapshots and clones (§3.6)."""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import LSVDError, VolumeExistsError
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=8)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_volume(name="vd"):
    store = InMemoryObjectStore()
    image = DiskImage(2 * MiB)
    cfg = small_config()
    vol = LSVDVolume.create(store, name, 16 * MiB, image, cfg)
    return store, image, cfg, vol


def test_snapshot_of_empty_volume_mounts():
    store, _image, cfg, vol = make_volume()
    vol.snapshot("empty")
    snap = LSVDVolume.open_snapshot(store, "vd", "empty", DiskImage(2 * MiB), cfg)
    assert snap.read(0, 4096) == b"\x00" * 4096


def test_two_snapshots_independent():
    store, _image, cfg, vol = make_volume()
    vol.write(0, b"1" * 4096)
    vol.snapshot("s1")
    vol.write(0, b"2" * 4096)
    vol.snapshot("s2")
    vol.write(0, b"3" * 4096)
    vol.drain()
    s1 = LSVDVolume.open_snapshot(store, "vd", "s1", DiskImage(2 * MiB), cfg)
    s2 = LSVDVolume.open_snapshot(store, "vd", "s2", DiskImage(2 * MiB), cfg)
    assert s1.read(0, 4096) == b"1" * 4096
    assert s2.read(0, 4096) == b"2" * 4096
    assert vol.read(0, 4096) == b"3" * 4096


def test_missing_snapshot_raises():
    store, _image, cfg, vol = make_volume()
    with pytest.raises(LSVDError):
        LSVDVolume.open_snapshot(store, "vd", "nope", DiskImage(2 * MiB), cfg)


def test_snapshot_survives_volume_remount():
    store, image, cfg, vol = make_volume()
    vol.write(0, b"S" * 4096)
    vol.snapshot("pin")
    vol.close()
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    assert "pin" in vol2.bs.snapshots
    vol2.write(0, b"T" * 4096)
    vol2.drain()
    snap = LSVDVolume.open_snapshot(store, "vd", "pin", DiskImage(2 * MiB), cfg)
    assert snap.read(0, 4096) == b"S" * 4096


def test_deferred_deletes_persist_across_remount():
    store, image, cfg, vol = make_volume()
    rng = random.Random(4)
    for i in range(300):
        vol.write(rng.randrange(0, 256) * 4096, bytes([i % 255 + 1]) * 4096)
    vol.snapshot("pin")
    for i in range(900):
        vol.write(rng.randrange(0, 256) * 4096, bytes([(i * 3) % 255 + 1]) * 4096)
    vol.drain()
    assert vol.bs.deferred_deletes  # GC deferred some deletes
    vol.close()
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    assert vol2.bs.deferred_deletes == vol.bs.deferred_deletes
    # deleting the snapshot after remount releases the space
    before = store.total_bytes("vd.")
    vol2.delete_snapshot("pin")
    assert store.total_bytes("vd.") < before


def test_clone_name_collision_rejected():
    store, _image, cfg, vol = make_volume()
    vol.close()
    LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)
    with pytest.raises(VolumeExistsError):
        LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)


def test_chained_clones():
    """Clone of a clone: the base chain resolves through two ancestors."""
    store, _image, cfg, vol = make_volume()
    vol.write(0, b"base" * 1024)
    vol.close()
    c1 = LSVDVolume.clone(store, "vd", "c1", DiskImage(2 * MiB), cfg)
    c1.write(4096, b"one!" * 1024)
    c1.close()
    c2 = LSVDVolume.clone(store, "c1", "c2", DiskImage(2 * MiB), cfg)
    c2.write(8192, b"two!" * 1024)
    c2.drain()
    assert c2.read(0, 4096) == b"base" * 1024  # from the root base
    assert c2.read(4096, 4096) == b"one!" * 1024  # from c1
    assert c2.read(8192, 4096) == b"two!" * 1024  # own write
    # grandparent untouched
    base = LSVDVolume.open(store, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    assert base.read(4096, 4096) == b"\x00" * 4096


def test_clone_snapshot_combination():
    """Snapshot a clone, mount it, delete it."""
    store, _image, cfg, vol = make_volume()
    vol.write(0, b"root" * 1024)
    vol.close()
    clone = LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)
    clone.write(0, b"div1" * 1024)
    clone.snapshot("cs")
    clone.write(0, b"div2" * 1024)
    clone.drain()
    snap = LSVDVolume.open_snapshot(store, "c", "cs", DiskImage(2 * MiB), cfg)
    assert snap.read(0, 4096) == b"div1" * 1024
    clone.delete_snapshot("cs")
    assert clone.read(0, 4096) == b"div2" * 1024


def test_base_deletion_safety_is_by_convention():
    """§3.6: the clone base is never modified; deleting all clones leaves
    it intact with no reference counting."""
    store, _image, cfg, vol = make_volume()
    vol.write(0, b"keep" * 1024)
    vol.close()
    base_objects = set(store.list("vd."))
    clone = LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)
    clone.write(0, b"temp" * 1024)
    clone.drain()
    # "delete" the clone: remove its own objects only
    for name in store.list("c."):
        store.delete(name)
    assert set(store.list("vd.")) == base_objects
    base = LSVDVolume.open(store, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    assert base.read(0, 4096) == b"keep" * 1024
