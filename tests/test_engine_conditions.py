"""Additional engine edge cases: composite events, stores, errors."""


from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.resources import Store


def test_all_of_failure_propagates():
    sim = Simulator()
    good = sim.timeout(1.0, "ok")
    bad = sim.event()
    caught = []

    def proc():
        try:
            yield AllOf(sim, [good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    bad.fail(RuntimeError("child failed"))
    sim.run()
    assert caught == ["child failed"]


def test_any_of_returns_winning_event():
    sim = Simulator()
    fast = sim.timeout(1.0, "fast")
    slow = sim.timeout(5.0, "slow")
    results = []

    def proc():
        event, value = yield AnyOf(sim, [slow, fast])
        results.append((event is fast, value))

    sim.process(proc())
    sim.run()
    assert results == [(True, "fast")]


def test_nested_conditions():
    sim = Simulator()
    results = []

    def proc():
        inner = AllOf(sim, [sim.timeout(1), sim.timeout(2)])
        event, _ = yield AnyOf(sim, [inner, sim.timeout(10)])
        results.append((event is inner, sim.now))

    sim.process(proc())
    sim.run()
    assert results == [(True, 2.0)]


def test_process_waiting_on_completed_process():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(quick())
    sim.run()
    results = []

    def late_waiter():
        value = yield proc  # already-processed event: immediate callback
        results.append(value)

    sim.process(late_waiter())
    sim.run()
    assert results == ["done"]


def test_store_many_waiting_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    for tag in ("a", "b", "c"):
        sim.process(consumer(tag))

    def producer():
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    sim.process(producer())
    sim.run()
    assert got == [("a", 0), ("b", 1), ("c", 2)]


def test_simultaneous_timeouts_fire_in_creation_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_queue_size_reporting():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.queue_size == 2
    sim.run()
    assert sim.queue_size == 0
