"""Randomised fault injection across the whole stack.

Hypothesis drives LSVD volumes through interleaved writes, barriers,
destages, PUT-settlement reorderings, crashes (cache and/or in-flight
PUTs), and recoveries — and after every recovery the prefix-consistency
checker must accept the result.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LSVDConfig, LSVDVolume
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore
from repro.shard import ShardedObjectStore, ShardRouter

MiB = 1 << 20
VOLUME = 8 * MiB
PAGES = VOLUME // 4096


def build(unsettled: bool, n_shards: int = 1):
    """One volume on a store; optionally unsettled and/or sharded.

    Returns ``(settled_view, store, image, cfg, vol)``: ``store`` is what
    the volume writes through, ``settled_view`` sees only completed PUTs
    — the store a recovering client mounts after a crash.
    """
    if n_shards > 1:
        inners = [InMemoryObjectStore() for _ in range(n_shards)]
        if unsettled:
            store = ShardedObjectStore(
                [UnsettledObjectStore(s) for s in inners], ShardRouter(n_shards)
            )
        else:
            store = ShardedObjectStore(list(inners), ShardRouter(n_shards))
        settled_view = ShardedObjectStore(list(inners), ShardRouter(n_shards))
    else:
        settled_view = InMemoryObjectStore()
        store = UnsettledObjectStore(settled_view) if unsettled else settled_view
    image = DiskImage(4 * MiB)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", VOLUME, image, cfg)
    if unsettled:
        store.settle_all()
    return settled_view, store, image, cfg, vol


step_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "write", "write", "barrier", "settle_one"]),
        st.integers(min_value=0, max_value=PAGES - 1),
    ),
    min_size=5,
    max_size=80,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    steps=step_strategy,
    crash_seed=st.integers(min_value=0, max_value=2**16),
    survive=st.floats(min_value=0.0, max_value=1.0),
)
def test_crash_anywhere_with_cache_is_prefix_consistent(steps, crash_seed, survive):
    """Arbitrary interleavings + arbitrary partial-durability crash."""
    _inner, store, image, cfg, vol = build(unsettled=False)
    rec = HistoryRecorder(vol.write, vol.flush)
    for op, page in steps:
        if op == "write":
            rec.write(page * 4096, 4096)
        elif op == "barrier":
            rec.barrier()
    image.crash(
        rng=random.Random(crash_seed),
        survive_probability=survive,
        allow_torn=True,
    )
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    verdict = PrefixChecker(rec).check(vol2.read, require_committed=True)
    assert verdict.ok_prefix, verdict.problems[:3]
    assert verdict.ok_committed, (verdict.cut, verdict.committed_through)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    steps=step_strategy,
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_out_of_order_settlement_then_total_loss(steps, order_seed):
    """PUTs settle in random order; then cache AND in-flight PUTs die.

    The surviving backend prefix must still be prefix-consistent.
    """
    inner, store, image, cfg, vol = build(unsettled=True)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng = random.Random(order_seed)
    for op, page in steps:
        if op == "write":
            try:
                rec.write(page * 4096, 4096)
            except Exception:
                # cache full while PUTs unsettled: settle one and retry
                if store.in_flight:
                    handle = rng.choice(store.pending_handles())
                    store.settle(handle)
                    vol.settle_put(handle)
                rec.write(page * 4096, 4096)
        elif op == "barrier":
            rec.barrier()
        elif op == "settle_one" and store.in_flight:
            handle = rng.choice(store.pending_handles())
            store.settle(handle)
            vol.settle_put(handle)
    store.crash()  # in-flight PUTs vanish
    image.lose()  # and the cache dies entirely
    fresh = DiskImage(4 * MiB)
    vol2 = LSVDVolume.open(inner, "vd", fresh, cfg, cache_lost=True)
    verdict = PrefixChecker(rec).check(vol2.read)
    assert verdict.ok_prefix, verdict.problems[:3]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    steps=step_strategy,
    order_seed=st.integers(min_value=0, max_value=2**16),
    n_shards=st.sampled_from([2, 3, 4]),
)
def test_sharded_out_of_order_settlement_then_total_loss(steps, order_seed, n_shards):
    """The sharded variant: PUTs settle in random order *per shard*, then
    the crash drops every shard's in-flight PUTs at once.  The union of
    the shards' surviving objects must still recover prefix-consistently
    — a hole on one shard strands later objects on all of them."""
    settled_view, store, image, cfg, vol = build(unsettled=True, n_shards=n_shards)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng = random.Random(order_seed)
    for op, page in steps:
        if op == "write":
            try:
                rec.write(page * 4096, 4096)
            except Exception:
                if store.in_flight:
                    handle = rng.choice(store.pending_handles())
                    store.settle(handle)
                    vol.settle_put(handle)
                rec.write(page * 4096, 4096)
        elif op == "barrier":
            rec.barrier()
        elif op == "settle_one" and store.in_flight:
            handle = rng.choice(store.pending_handles())
            store.settle(handle)
            vol.settle_put(handle)
    store.crash()  # in-flight PUTs vanish on every shard
    image.lose()
    fresh = DiskImage(4 * MiB)
    vol2 = LSVDVolume.open(settled_view, "vd", fresh, cfg, cache_lost=True)
    verdict = PrefixChecker(rec).check(vol2.read)
    assert verdict.ok_prefix, verdict.problems[:3]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    steps=step_strategy,
    crash_seed=st.integers(min_value=0, max_value=2**16),
    survive=st.floats(min_value=0.0, max_value=1.0),
)
def test_sharded_crash_anywhere_with_cache_is_prefix_consistent(
    steps, crash_seed, survive
):
    """Cache-crash suite over a 3-shard backend: placement must be
    invisible to the prefix-consistency contract."""
    _settled, store, image, cfg, vol = build(unsettled=False, n_shards=3)
    rec = HistoryRecorder(vol.write, vol.flush)
    for op, page in steps:
        if op == "write":
            rec.write(page * 4096, 4096)
        elif op == "barrier":
            rec.barrier()
    image.crash(
        rng=random.Random(crash_seed),
        survive_probability=survive,
        allow_torn=True,
    )
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    verdict = PrefixChecker(rec).check(vol2.read, require_committed=True)
    assert verdict.ok_prefix, verdict.problems[:3]
    assert verdict.ok_committed, (verdict.cut, verdict.committed_through)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_repeated_crash_recover_cycles(data):
    """Crash, recover, write more, crash again — five times over."""
    _inner, store, image, cfg, vol = build(unsettled=False)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng_seed = data.draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(rng_seed)
    for cycle in range(5):
        n = data.draw(st.integers(min_value=3, max_value=25))
        for _ in range(n):
            rec.write(rng.randrange(PAGES) * 4096, 4096)
        if rng.random() < 0.7:
            rec.barrier()
        image.crash(rng=rng, survive_probability=rng.random(), allow_torn=True)
        vol = LSVDVolume.open(store, "vd", image, cfg)
        rec._write_fn = vol.write
        rec._flush_fn = vol.flush
        verdict = PrefixChecker(rec).check(vol.read)
        assert verdict.ok_prefix, (cycle, verdict.problems[:3])
        # writes beyond the cut were legitimately rolled back by this
        # recovery; drop them from the expected history so the next
        # cycle's check composes correctly across crash epochs
        rec.history = [r for r in rec.history if r.write_id <= verdict.cut]
        rec.barrier_after = min(rec.barrier_after, verdict.cut)
