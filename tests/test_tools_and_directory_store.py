"""Tests for the directory object store and lsvdtool."""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore, NoSuchKeyError
from repro.objstore.directory import DirectoryObjectStore
from repro.tools import fsck_volume, inspect_object, inspect_stream

MiB = 1 << 20


# -- DirectoryObjectStore ------------------------------------------------------


def test_directory_store_roundtrip(tmp_path):
    s = DirectoryObjectStore(tmp_path / "bucket")
    s.put("vd.00000001", b"payload")
    assert s.get("vd.00000001") == b"payload"
    assert s.get_range("vd.00000001", 3, 2) == b"lo"
    assert s.size("vd.00000001") == 7
    assert s.exists("vd.00000001")


def test_directory_store_missing_raises(tmp_path):
    s = DirectoryObjectStore(tmp_path)
    with pytest.raises(NoSuchKeyError):
        s.get("nope")
    with pytest.raises(NoSuchKeyError):
        s.delete("nope")
    with pytest.raises(NoSuchKeyError):
        s.size("nope")


def test_directory_store_list_prefix_and_delete(tmp_path):
    s = DirectoryObjectStore(tmp_path)
    for name in ("a.1", "a.2", "b.1"):
        s.put(name, b"")
    assert s.list("a.") == ["a.1", "a.2"]
    s.delete("a.1")
    assert s.list("a.") == ["a.2"]


def test_directory_store_weird_names(tmp_path):
    s = DirectoryObjectStore(tmp_path)
    name = "vol/with slash.00000001"
    s.put(name, b"x")
    assert s.list() == [name]
    assert s.get(name) == b"x"


def test_directory_store_persists_across_instances(tmp_path):
    DirectoryObjectStore(tmp_path).put("k", b"v")
    assert DirectoryObjectStore(tmp_path).get("k") == b"v"


def test_volume_on_directory_store(tmp_path):
    """Full LSVD volume lifecycle persisted to real files."""
    store = DirectoryObjectStore(tmp_path / "s3")
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.close()
    # reopen via a brand-new store instance (process restart)
    store2 = DirectoryObjectStore(tmp_path / "s3")
    vol2 = LSVDVolume.open(store2, "vd", DiskImage(2 * MiB), cfg, cache_lost=True)
    for i in range(64):
        assert vol2.read(i * 4096, 4096) == bytes([i + 1]) * 4096


# -- lsvdtool -------------------------------------------------------------------


def make_volume_with_data(store=None):
    store = store if store is not None else InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    rng = random.Random(3)
    for i in range(200):
        vol.write(rng.randrange(0, 1024) * 4096, bytes([i % 255 + 1]) * 4096)
    vol.drain()
    return store, cfg, vol


def test_inspect_stream_healthy_volume():
    store, _cfg, vol = make_volume_with_data()
    report = inspect_stream(store, "vd")
    assert report.healthy
    assert report.checkpoints
    assert not report.holes
    assert not report.stranded
    assert report.consistent_prefix_end >= max(report.checkpoints)
    assert "no errors" in report.summary()


def test_inspect_object_detects_corruption():
    store, _cfg, vol = make_volume_with_data()
    names = [n for n in store.list("vd.") if n.rsplit(".", 1)[1].isdigit()]
    victim = names[len(names) // 2]
    blob = bytearray(store.get(victim))
    blob[-1] ^= 0xFF
    store.put(victim, bytes(blob))
    obj = inspect_object(store, victim)
    assert not obj.crc_ok
    report = inspect_stream(store, "vd")
    assert not report.healthy
    assert any("CRC" in e or "mismatch" in e for e in report.errors)


def test_inspect_stream_detects_stranded_objects():
    store, _cfg, vol = make_volume_with_data()
    report = inspect_stream(store, "vd")
    end = report.consistent_prefix_end
    # delete an object in the middle of the replay window to make a hole;
    # first ensure there is a post-checkpoint window to damage
    newest_ckpt = max(report.checkpoints)
    if end > newest_ckpt + 1:
        from repro.core.log import object_name

        store.delete(object_name("vd", newest_ckpt + 1))
        damaged = inspect_stream(store, "vd")
        assert damaged.consistent_prefix_end == newest_ckpt
        assert damaged.stranded


def test_fsck_checks_checkpoint_payloads():
    store, _cfg, vol = make_volume_with_data()
    report = fsck_volume(store, "vd")
    assert report.healthy


def test_lsvdtool_cli(tmp_path, capsys):
    from repro.tools.lsvdtool import main

    store = DirectoryObjectStore(tmp_path / "s3")
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    vol.write(0, b"x" * 4096)
    vol.close()
    rc = main([str(tmp_path / "s3"), "vd", "--objects"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no errors" in out
    assert "kind=ckpt" in out
    assert main([str(tmp_path / "s3"), "ghost"]) == 2
