"""Tests for §6.3 cache sharing across cloned volumes."""

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.shared_cache import SharedObjectCache, attach_shared_cache
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


# -- the cache itself ----------------------------------------------------------


def test_roundtrip_aligned():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024)
    cache.insert("obj", 0, b"x" * (128 * 1024))
    assert cache.get("obj", 0, 64 * 1024) == b"x" * (64 * 1024)
    assert cache.get("obj", 64 * 1024, 64 * 1024) == b"x" * (64 * 1024)
    assert cache.get("obj", 16 * 1024, 32 * 1024) == b"x" * (32 * 1024)


def test_gap_returns_none():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024)
    cache.insert("obj", 0, b"x" * (64 * 1024))
    assert cache.get("obj", 0, 128 * 1024) is None
    assert cache.get("other", 0, 1024) is None


def test_lru_eviction():
    cache = SharedObjectCache(capacity=128 * 1024, chunk_size=64 * 1024)
    cache.insert("a", 0, b"1" * (64 * 1024))
    cache.insert("b", 0, b"2" * (64 * 1024))
    cache.get("a", 0, 1024)  # touch a: b becomes LRU
    cache.insert("c", 0, b"3" * (64 * 1024))  # evicts b
    assert cache.get("a", 0, 1024) is not None
    assert cache.get("b", 0, 1024) is None
    assert cache.stats.evictions == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        SharedObjectCache(capacity=1024, chunk_size=64 * 1024)


def test_immutable_objects_never_stale():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024)
    cache.insert("obj", 0, b"v1" * (32 * 1024))
    # re-inserting different bytes under the same key is ignored: object
    # names are immutable identities
    cache.insert("obj", 0, b"v2" * (32 * 1024))
    assert cache.get("obj", 0, 64 * 1024) == b"v1" * (32 * 1024)


# -- attached to cloned volumes ------------------------------------------------


def make_base_and_clones(n_clones=3):
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=128 * 1024, checkpoint_interval=8)
    base = LSVDVolume.create(store, "base", 16 * MiB, DiskImage(2 * MiB), cfg)
    for i in range(512):
        base.write(i * 4096, bytes([i % 251 + 1]) * 4096)
    base.close()
    clones = [
        LSVDVolume.clone(store, "base", f"vm{i}", DiskImage(2 * MiB), cfg)
        for i in range(n_clones)
    ]
    return store, clones


def test_second_clone_hits_what_first_fetched():
    store, clones = make_base_and_clones(2)
    shared = SharedObjectCache(capacity=8 * MiB)
    for clone in clones:
        attach_shared_cache(clone, shared)
    gets_before = store.stats.range_gets + store.stats.gets
    clones[0].read(100 * 4096, 4096)
    gets_mid = store.stats.range_gets + store.stats.gets
    assert gets_mid > gets_before  # first clone went to the backend
    clones[1].read(100 * 4096, 4096)
    assert store.stats.range_gets + store.stats.gets == gets_mid  # shared hit
    assert shared.stats.hits >= 1


def test_shared_cache_correctness_across_clones():
    store, clones = make_base_and_clones(3)
    shared = SharedObjectCache(capacity=8 * MiB)
    for clone in clones:
        attach_shared_cache(clone, shared)
    # divergent writes stay private
    clones[0].write(0, b"A" * 4096)
    clones[1].write(0, b"B" * 4096)
    for clone in clones:
        clone.drain()
    assert clones[0].read(0, 4096) == b"A" * 4096
    assert clones[1].read(0, 4096) == b"B" * 4096
    assert clones[2].read(0, 4096) == bytes([0 % 251 + 1]) * 4096
    # shared base blocks agree everywhere
    for clone in clones:
        assert clone.read(200 * 4096, 4096) == bytes([200 % 251 + 1]) * 4096


# -- bounded headers -----------------------------------------------------------


def test_header_lru_is_bounded():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024, max_headers=4)
    for i in range(10):
        cache.header_put(f"obj{i}", {"seq": i})
    assert len(cache.headers) == 4
    # oldest entries fell off; the newest survive
    assert cache.header_get("obj0") is None
    assert cache.header_get("obj9") == {"seq": 9}
    assert cache.stats.header_evictions == 6


def test_header_get_refreshes_lru_order():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024, max_headers=2)
    cache.header_put("a", 1)
    cache.header_put("b", 2)
    cache.header_get("a")  # refresh: b is now the LRU entry
    cache.header_put("c", 3)
    assert cache.header_get("a") == 1
    assert cache.header_get("b") is None


def test_header_dropped_with_last_chunk_of_object():
    cache = SharedObjectCache(capacity=128 * 1024, chunk_size=64 * 1024)
    cache.insert("a", 0, b"1" * (64 * 1024))
    cache.header_put("a", {"seq": 1})
    cache.insert("b", 0, b"2" * (64 * 1024))
    cache.insert("c", 0, b"3" * (64 * 1024))  # evicts a's only chunk
    assert cache.header_get("a") is None
    assert cache.stats.header_evictions == 1


def test_max_headers_validation():
    with pytest.raises(ValueError):
        SharedObjectCache(capacity=1 * MiB, max_headers=0)


# -- per-tenant budgets / weighted eviction ------------------------------------


def test_over_budget_tenant_is_preferred_eviction_victim():
    KiB64 = 64 * 1024
    cache = SharedObjectCache(capacity=4 * KiB64, chunk_size=KiB64)
    cache.set_budget("hog", KiB64)
    cache.insert("quiet-obj", 0, b"q" * KiB64, tenant="quiet")
    # the hog fills the remaining capacity, far over its 1-chunk budget
    for i in range(3):
        cache.insert(f"hog-obj{i}", 0, bytes([i + 1]) * KiB64, tenant="hog")
    assert cache.tenant_usage("hog") == KiB64  # clipped back to budget
    # one more insert evicts hog chunks, not the quiet tenant's —
    # even though quiet-obj is the globally least-recently-used chunk
    cache.insert("new-obj", 0, b"n" * KiB64, tenant="quiet")
    assert cache.get("quiet-obj", 0, KiB64) == b"q" * KiB64


def test_budget_zero_removes_partition():
    KiB64 = 64 * 1024
    cache = SharedObjectCache(capacity=4 * KiB64, chunk_size=KiB64)
    cache.set_budget("t", KiB64)
    assert cache.tenant_budget("t") == KiB64
    cache.set_budget("t", 0)
    assert cache.tenant_budget("t") is None
    for i in range(3):
        cache.insert(f"o{i}", 0, bytes([i + 1]) * KiB64, tenant="t")
    assert cache.tenant_usage("t") == 3 * KiB64  # unbudgeted again


def test_shrinking_budget_evicts_immediately():
    KiB64 = 64 * 1024
    cache = SharedObjectCache(capacity=8 * KiB64, chunk_size=KiB64)
    for i in range(4):
        cache.insert(f"o{i}", 0, bytes([i + 1]) * KiB64, tenant="t")
    cache.set_budget("t", 2 * KiB64)
    assert cache.tenant_usage("t") == 2 * KiB64
    # LRU chunks went first; the newest two survive
    assert cache.get("o3", 0, KiB64) is not None
    assert cache.get("o0", 0, KiB64) is None


# -- obs publication -----------------------------------------------------------


def test_bind_obs_publishes_sharedcache_metrics():
    from repro.obs import Registry

    cache = SharedObjectCache(capacity=128 * 1024, chunk_size=64 * 1024)
    cache.insert("a", 0, b"1" * (64 * 1024))
    cache.get("a", 0, 1024)
    cache.get("missing", 0, 1024)
    # late binding replays the history accumulated so far
    obs = Registry()
    cache.bind_obs(obs)
    assert obs.value("sharedcache.hits") == 1
    assert obs.value("sharedcache.misses") == 1
    assert obs.value("sharedcache.insertions") == 1
    assert obs.value("sharedcache.bytes") == 64 * 1024
    # and live updates keep flowing
    cache.insert("b", 0, b"2" * (64 * 1024))
    cache.insert("c", 0, b"3" * (64 * 1024))
    assert obs.value("sharedcache.evictions") == cache.stats.evictions > 0


# -- first-class attachment API ------------------------------------------------


def test_attach_detach_restores_direct_path():
    store, clones = make_base_and_clones(2)
    shared = SharedObjectCache(capacity=8 * MiB)
    att0 = shared.attach(clones[0], tenant="t0")
    att1 = shared.attach(clones[1], tenant="t1")
    assert shared.attachments() == [att0, att1]
    clones[0].read(100 * 4096, 4096)
    att1.detach()
    assert not att1.attached
    assert shared.attachments() == [att0]
    hits_before = shared.stats.hits
    # the detached clone reads directly: correct data, no shared hits
    assert clones[1].read(100 * 4096, 4096) == bytes([100 % 251 + 1]) * 4096
    assert shared.stats.hits == hits_before
    att1.detach()  # idempotent


def test_attachment_tags_inserts_with_tenant():
    store, clones = make_base_and_clones(1)
    shared = SharedObjectCache(capacity=8 * MiB)
    shared.attach(clones[0], tenant="acme")
    clones[0].read(100 * 4096, 4096)
    assert shared.tenant_usage("acme") > 0


def test_gc_of_clone_does_not_poison_shared_cache():
    """A clone's own churn (and GC) must not corrupt what other clones
    read through the shared cache."""
    import random

    store, clones = make_base_and_clones(2)
    shared = SharedObjectCache(capacity=8 * MiB)
    for clone in clones:
        attach_shared_cache(clone, shared)
    rng = random.Random(1)
    for i in range(2000):
        clones[0].write(rng.randrange(0, 512) * 4096, bytes([i % 250 + 1]) * 4096)
    clones[0].drain()
    # clone 1 still reads pristine base content
    for lba in range(0, 512 * 4096, 64 * 4096):
        assert clones[1].read(lba, 4096) == bytes([(lba // 4096) % 251 + 1]) * 4096
