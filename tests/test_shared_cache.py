"""Tests for §6.3 cache sharing across cloned volumes."""

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.shared_cache import SharedObjectCache, attach_shared_cache
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


# -- the cache itself ----------------------------------------------------------


def test_roundtrip_aligned():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024)
    cache.insert("obj", 0, b"x" * (128 * 1024))
    assert cache.get("obj", 0, 64 * 1024) == b"x" * (64 * 1024)
    assert cache.get("obj", 64 * 1024, 64 * 1024) == b"x" * (64 * 1024)
    assert cache.get("obj", 16 * 1024, 32 * 1024) == b"x" * (32 * 1024)


def test_gap_returns_none():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024)
    cache.insert("obj", 0, b"x" * (64 * 1024))
    assert cache.get("obj", 0, 128 * 1024) is None
    assert cache.get("other", 0, 1024) is None


def test_lru_eviction():
    cache = SharedObjectCache(capacity=128 * 1024, chunk_size=64 * 1024)
    cache.insert("a", 0, b"1" * (64 * 1024))
    cache.insert("b", 0, b"2" * (64 * 1024))
    cache.get("a", 0, 1024)  # touch a: b becomes LRU
    cache.insert("c", 0, b"3" * (64 * 1024))  # evicts b
    assert cache.get("a", 0, 1024) is not None
    assert cache.get("b", 0, 1024) is None
    assert cache.stats.evictions == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        SharedObjectCache(capacity=1024, chunk_size=64 * 1024)


def test_immutable_objects_never_stale():
    cache = SharedObjectCache(capacity=1 * MiB, chunk_size=64 * 1024)
    cache.insert("obj", 0, b"v1" * (32 * 1024))
    # re-inserting different bytes under the same key is ignored: object
    # names are immutable identities
    cache.insert("obj", 0, b"v2" * (32 * 1024))
    assert cache.get("obj", 0, 64 * 1024) == b"v1" * (32 * 1024)


# -- attached to cloned volumes ------------------------------------------------


def make_base_and_clones(n_clones=3):
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=128 * 1024, checkpoint_interval=8)
    base = LSVDVolume.create(store, "base", 16 * MiB, DiskImage(2 * MiB), cfg)
    for i in range(512):
        base.write(i * 4096, bytes([i % 251 + 1]) * 4096)
    base.close()
    clones = [
        LSVDVolume.clone(store, "base", f"vm{i}", DiskImage(2 * MiB), cfg)
        for i in range(n_clones)
    ]
    return store, clones


def test_second_clone_hits_what_first_fetched():
    store, clones = make_base_and_clones(2)
    shared = SharedObjectCache(capacity=8 * MiB)
    for clone in clones:
        attach_shared_cache(clone, shared)
    gets_before = store.stats.range_gets + store.stats.gets
    clones[0].read(100 * 4096, 4096)
    gets_mid = store.stats.range_gets + store.stats.gets
    assert gets_mid > gets_before  # first clone went to the backend
    clones[1].read(100 * 4096, 4096)
    assert store.stats.range_gets + store.stats.gets == gets_mid  # shared hit
    assert shared.stats.hits >= 1


def test_shared_cache_correctness_across_clones():
    store, clones = make_base_and_clones(3)
    shared = SharedObjectCache(capacity=8 * MiB)
    for clone in clones:
        attach_shared_cache(clone, shared)
    # divergent writes stay private
    clones[0].write(0, b"A" * 4096)
    clones[1].write(0, b"B" * 4096)
    for clone in clones:
        clone.drain()
    assert clones[0].read(0, 4096) == b"A" * 4096
    assert clones[1].read(0, 4096) == b"B" * 4096
    assert clones[2].read(0, 4096) == bytes([0 % 251 + 1]) * 4096
    # shared base blocks agree everywhere
    for clone in clones:
        assert clone.read(200 * 4096, 4096) == bytes([200 % 251 + 1]) * 4096


def test_gc_of_clone_does_not_poison_shared_cache():
    """A clone's own churn (and GC) must not corrupt what other clones
    read through the shared cache."""
    import random

    store, clones = make_base_and_clones(2)
    shared = SharedObjectCache(capacity=8 * MiB)
    for clone in clones:
        attach_shared_cache(clone, shared)
    rng = random.Random(1)
    for i in range(2000):
        clones[0].write(rng.randrange(0, 512) * 4096, bytes([i % 250 + 1]) * 4096)
    clones[0].drain()
    # clone 1 still reads pristine base content
    for lba in range(0, 512 * 4096, 64 * 4096):
        assert clones[1].read(lba, 4096) == bytes([(lba // 4096) % 251 + 1]) * 4096
