"""Tests for the timed object-store facade and client machine."""

import pytest

from repro.cluster import StorageCluster
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import ClientMachine, SimulatedObjectStore
from repro.sim import Simulator

MiB = 1 << 20


def world():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    return sim, machine, cluster, backend


def test_put_costs_network_plus_latency_plus_devices():
    sim, machine, cluster, backend = world()
    done = backend.put("vd.00000001", 8 * MiB)
    sim.run_until_event(done)
    # at least: 8MiB over a 10Gb link (6.7ms) + 5.9ms RGW latency
    assert sim.now > 8 * MiB / 1.25e9 + backend.request_latency
    assert cluster.totals().writes == 64  # 6 chunks + 58 meta (4,2 code)
    assert backend.puts == 1
    assert backend.bytes_put == 8 * MiB


def test_get_range_touches_chunks_and_returns_over_network():
    sim, machine, cluster, backend = world()
    sim.run_until_event(backend.put("vd.00000001", 8 * MiB))
    t0 = sim.now
    sim.run_until_event(backend.get_range("vd.00000001", 1 * MiB, 128 * 1024))
    assert sim.now - t0 >= backend.request_latency
    assert cluster.totals().reads >= 1
    assert backend.gets == 1


def test_delete_is_metadata_only():
    sim, machine, cluster, backend = world()
    writes_before = cluster.totals().writes
    sim.run_until_event(backend.delete("vd.00000009"))
    totals = cluster.totals()
    assert totals.writes - writes_before == 6  # one meta write per shard
    assert backend.deletes == 1


def test_concurrent_puts_share_the_network():
    """Two 8 MiB PUTs over one 10Gb link cannot finish in one PUT's time."""
    sim, machine, cluster, backend = world()
    a = backend.put("vd.00000001", 8 * MiB)
    b = backend.put("vd.00000002", 8 * MiB)

    def wait():
        yield a
        yield b

    sim.run_until_event(sim.process(wait()))
    single_sim, _m, _c, single_backend = world()
    single_sim.run_until_event(single_backend.put("vd.00000001", 8 * MiB))
    # both transfers must cross the link serially; everything else overlaps
    transfer = 8 * MiB / 1.25e9
    assert sim.now >= single_sim.now + transfer * 0.9
    assert sim.now > single_sim.now * 1.25


def test_cpu_work_serialises():
    sim = Simulator()
    machine = ClientMachine(sim, cpu_capacity=1)
    times = []

    def worker(tag):
        yield from machine.cpu_work(1e-3)
        times.append((tag, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert times[0][1] == pytest.approx(1e-3)
    assert times[1][1] == pytest.approx(2e-3)
