"""Tests for the §4.9 deployability cost model."""

import pytest

from repro.cloud import ebs_monthly_cost, lsvd_monthly_cost
from repro.cloud.cost import breakeven_duty_cycle


def test_ebs_50k_iops_exceeds_3000_per_month():
    """The paper's headline: 50K provisioned IOPS costs over $3000/mo."""
    cost = ebs_monthly_cost(provisioned_iops=50_000, size_gb=150)
    assert cost > 3000


def test_ebs_cost_scales_linearly_with_iops():
    assert ebs_monthly_cost(20_000, 100) < ebs_monthly_cost(40_000, 100)


def test_lsvd_bursty_volume_costs_a_few_dollars():
    """Same peak capability, ~1% duty cycle: a few dollars a month."""
    cost = lsvd_monthly_cost(
        size_gb=80, write_iops=50_000, duty_cycle=0.01, batch_size=8 << 20
    )
    assert cost < 20


def test_lsvd_cheaper_than_ebs_even_flat_out():
    """Batching makes even a 100% duty cycle cheaper than provisioning."""
    ebs = ebs_monthly_cost(50_000, 80)
    lsvd = lsvd_monthly_cost(size_gb=80, write_iops=50_000, duty_cycle=1.0)
    assert lsvd < ebs


def test_lsvd_cost_grows_with_duty_cycle():
    low = lsvd_monthly_cost(size_gb=80, write_iops=50_000, duty_cycle=0.01)
    high = lsvd_monthly_cost(size_gb=80, write_iops=50_000, duty_cycle=0.5)
    assert low < high


def test_batching_is_the_lever():
    """Without batching (PUT per write) S3 requests would be ruinous."""
    batched = lsvd_monthly_cost(size_gb=80, write_iops=50_000, duty_cycle=0.1)
    unbatched = lsvd_monthly_cost(
        size_gb=80, write_iops=50_000, duty_cycle=0.1, batch_size=16 * 1024
    )
    assert unbatched > 100 * batched


def test_breakeven_duty_cycle_above_one():
    """LSVD stays cheaper than a 50K-IOPS EBS volume at any duty cycle."""
    assert breakeven_duty_cycle(50_000, 80) > 1.0


def test_input_validation():
    with pytest.raises(ValueError):
        ebs_monthly_cost(-1, 100)
    with pytest.raises(ValueError):
        lsvd_monthly_cost(size_gb=10, write_iops=100, duty_cycle=1.5)


def test_gc_waf_increases_cost():
    base = lsvd_monthly_cost(size_gb=80, write_iops=10_000, duty_cycle=0.5, gc_waf=1.0)
    amplified = lsvd_monthly_cost(
        size_gb=80, write_iops=10_000, duty_cycle=0.5, gc_waf=2.0
    )
    assert amplified > base
