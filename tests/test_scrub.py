"""Tests for the background scrubber."""

import random


from repro.core import LSVDConfig, LSVDVolume
from repro.core.scrub import Scrubber
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def make_volume():
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    rng = random.Random(1)
    for i in range(150):
        vol.write(rng.randrange(0, 1024) * 4096, bytes([i % 255 + 1]) * 4096)
    vol.drain()
    return store, vol


def test_clean_volume_scrubs_clean():
    store, vol = make_volume()
    scrubber = Scrubber(vol.bs)
    findings = scrubber.full_pass()
    assert findings == []
    assert scrubber.stats.objects_checked > 0
    assert scrubber.stats.bytes_verified > 0
    assert scrubber.stats.passes_completed == 1


def test_scrub_detects_bit_rot():
    store, vol = make_volume()
    names = [n for n in store.list("vd.") if n.rsplit(".", 1)[1].isdigit()]
    victim = names[len(names) // 2]
    blob = bytearray(store.get(victim))
    blob[len(blob) // 2] ^= 0x40
    store.put(victim, bytes(blob))
    findings = Scrubber(vol.bs).full_pass()
    assert findings
    assert any("CRC" in f.problem for f in findings)


def test_scrub_detects_missing_object():
    store, vol = make_volume()
    # remove a tracked object behind the volume's back
    tracked = sorted(
        s for s, i in vol.bs.omap.objects.items() if i.data_bytes > 0
    )
    from repro.core.log import object_name

    store.delete(object_name("vd", tracked[0]))
    findings = Scrubber(vol.bs).full_pass()
    assert any("missing" in f.problem for f in findings)


def test_incremental_steps_cover_everything():
    store, vol = make_volume()
    scrubber = Scrubber(vol.bs)
    total = len([s for s, i in vol.bs.omap.objects.items() if not i.in_base])
    for _ in range(total * 2):
        scrubber.step(max_objects=2)
        if scrubber.stats.passes_completed >= 1:
            break
    assert scrubber.stats.passes_completed >= 1
    assert scrubber.stats.objects_checked >= total


def test_scrub_empty_store_is_noop():
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    scrubber = Scrubber(vol.bs)
    assert scrubber.step() == []
