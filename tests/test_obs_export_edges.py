"""Exporter edge cases: empty registries, single samples, empty traces,
span-tree JSON round-trips, and the sectioned BENCH writer."""

import json

from repro.obs import (
    Histogram,
    Registry,
    SpanRecorder,
    Trace,
    metrics_json,
    prometheus_text,
    registry_csv,
    write_bench_json,
    write_bench_sections_json,
)
from repro.obs.spans import Span


# ---------------------------------------------------------------------------
# empty registry
# ---------------------------------------------------------------------------


class TestEmptyRegistry:
    def test_prometheus_text_is_empty_but_valid(self):
        text = prometheus_text(Registry())
        assert text == ""

    def test_csv_has_header_only(self):
        assert registry_csv(Registry()) == "metric,value\n"

    def test_metrics_json_parses_with_empty_snapshot(self):
        document = json.loads(metrics_json(Registry()))
        assert document == {"metrics": {}}

    def test_write_bench_json_empty_registry(self, tmp_path):
        path = write_bench_json("edge", Registry(), out_dir=tmp_path)
        document = json.loads(path.read_text())
        assert document["bench"] == "edge"
        assert document["figures"] == {}
        assert document["metrics"] == {}


# ---------------------------------------------------------------------------
# single-sample histogram
# ---------------------------------------------------------------------------


class TestSingleSampleHistogram:
    def make(self):
        obs = Registry()
        obs.histogram("lat").observe(0.004)
        return obs

    def test_prometheus_buckets_are_cumulative_and_sum_matches(self):
        text = prometheus_text(self.make())
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert "lat_sum 0.004" in text
        # cumulative: every bucket count is 0 or 1, never resets
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1

    def test_csv_expands_summary_rows(self):
        rows = dict(
            line.split(",", 1)
            for line in registry_csv(self.make()).strip().splitlines()[1:]
        )
        assert rows["lat.count"] == "1"
        assert float(rows["lat.p50"]) == 0.004
        assert float(rows["lat.min"]) == float(rows["lat.max"]) == 0.004

    def test_json_snapshot_percentiles_collapse_to_the_sample(self):
        document = json.loads(metrics_json(self.make()))
        snap = document["metrics"]["lat"]
        assert snap["count"] == 1
        assert snap["p50"] == snap["p99"] == snap["mean"] == 0.004

    def test_empty_histogram_still_exports(self):
        obs = Registry()
        h = obs.histogram("lat")
        assert isinstance(h, Histogram)
        assert "lat_count 0" in prometheus_text(obs)
        assert json.loads(metrics_json(obs))["metrics"]["lat"]["count"] == 0


# ---------------------------------------------------------------------------
# zero-event trace
# ---------------------------------------------------------------------------


class TestZeroEventTrace:
    def test_empty_trace_exports_cleanly(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.to_jsonl() == ""
        assert trace.counts() == {}
        assert trace.events() == []


# ---------------------------------------------------------------------------
# span-tree JSON dump round-trip
# ---------------------------------------------------------------------------


class TestSpanTreeRoundTrip:
    def build_tree(self):
        rec = SpanRecorder()
        root = rec.root("write", lba=128)
        queue = root.begin("space_wait", kind="queue")
        queue.end()
        service = root.begin("wc_append", bytes=4096)
        service.end()
        root.end()
        return root

    def test_round_trip_preserves_structure_attrs_and_clock(self):
        root = self.build_tree()
        encoded = json.dumps(root.to_dict(), sort_keys=True)
        rebuilt = Span.from_dict(json.loads(encoded))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == encoded
        assert rebuilt.name == "write"
        assert rebuilt.attrs == {"lba": 128}
        assert [c.name for c in rebuilt.children] == ["space_wait", "wc_append"]
        assert rebuilt.children[0].kind == "queue"
        assert rebuilt.children[1].attrs == {"bytes": 4096}
        assert rebuilt.duration == root.duration

    def test_round_trip_of_attrless_childless_span(self):
        rec = SpanRecorder()
        root = rec.root("flush")
        root.end()
        data = root.to_dict()
        assert "attrs" not in data and "children" not in data
        rebuilt = Span.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.to_dict() == data
        assert rebuilt.children == [] or tuple(rebuilt.children) == ()

    def test_open_child_survives_round_trip_with_null_end(self):
        rec = SpanRecorder()
        root = rec.root("read")
        root.begin("backend_fetch")  # never ended: crash-shaped tree
        root.end()
        rebuilt = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert rebuilt.children[0].stop is None
        assert not rebuilt.children[0].ended


# ---------------------------------------------------------------------------
# sectioned BENCH writer
# ---------------------------------------------------------------------------


class TestSectionedBench:
    def test_sections_flatten_into_prefixed_figures(self, tmp_path):
        core, runtime = Registry(), Registry()
        core.counter("a").inc(3)
        runtime.gauge("b").set(7)
        path = write_bench_sections_json(
            "obs",
            {
                "core": (core, {"write_amplification": 1.5}),
                "runtime": (runtime, {"iops": 100.0}),
            },
            out_dir=tmp_path,
        )
        assert path.name == "BENCH_obs.json"
        document = json.loads(path.read_text())
        assert document["sections"] == ["core", "runtime"]
        assert document["figures"] == {
            "core_write_amplification": 1.5,
            "runtime_iops": 100.0,
        }
        assert document["metrics"]["core"]["a"] == 3
        assert document["metrics"]["runtime"]["b"] == 7
