"""Tests for per-tenant QoS: token buckets, throttles, admission in the
timed runtime, and noisy-neighbour isolation on shared hardware."""

import pytest

from repro.cluster import StorageCluster
from repro.devices.hdd import HDD, HDDSpec
from repro.fleet import (
    UNLIMITED,
    FleetRuntime,
    QoSLimits,
    QoSTokenBucket,
    TenantThrottle,
    ThrottleSet,
)
from repro.obs import Registry
from repro.runtime import ClientMachine, make_sharded_backend
from repro.runtime.blockdev import run_jobs
from repro.sim import Simulator
from repro.workloads import FioJob

MiB = 1 << 20
GiB = 1 << 30


# -- QoSLimits / bucket --------------------------------------------------------


def test_limits_validation_and_unlimited():
    assert UNLIMITED.unlimited
    assert QoSLimits(iops=100).unlimited is False
    assert QoSLimits(bytes_per_s=1).unlimited is False
    with pytest.raises(ValueError):
        QoSLimits(iops=-1)
    with pytest.raises(ValueError):
        QoSLimits(burst_bytes=-0.5)


def test_bucket_rate_must_be_positive():
    with pytest.raises(ValueError):
        QoSTokenBucket(0.0)


def test_bucket_charges_debt_deterministically():
    bucket = QoSTokenBucket(rate=100.0, burst=1.0)
    # burst of 1 admits the first op; the next owes one op-time
    assert bucket.delay_for(0.0, 1.0) == 0.0
    assert bucket.delay_for(0.0, 1.0) == pytest.approx(0.01)
    # third simultaneous arrival queues behind the second's debt
    assert bucket.delay_for(0.0, 1.0) == pytest.approx(0.02)
    assert bucket.level == pytest.approx(-2.0)
    # 0.03 s later the refill (3 tokens at rate 100) has cleared the
    # debt and re-capped at the burst: one op admits free, the next owes
    assert bucket.delay_for(0.03, 1.0) == 0.0
    assert bucket.delay_for(0.03, 1.0) == pytest.approx(0.01)


def test_bucket_refill_caps_at_burst():
    bucket = QoSTokenBucket(rate=10.0, burst=2.0)
    bucket.delay_for(0.0, 2.0)  # drain the burst
    # a long idle period must not accumulate more than the burst
    assert bucket.delay_for(100.0, 2.0) == 0.0
    assert bucket.delay_for(100.0, 1.0) == pytest.approx(0.1)


def test_bucket_default_burst_is_50ms_of_rate():
    bucket = QoSTokenBucket(rate=200.0)
    assert bucket.burst == pytest.approx(10.0)


# -- TenantThrottle ------------------------------------------------------------


def test_throttle_tracks_metrics_and_queue_depth():
    obs = Registry()
    throttle = TenantThrottle("acme", QoSLimits(iops=10.0, burst_ops=1), obs=obs)
    assert throttle.admit(0.0, nbytes=4096) == 0.0
    delay = throttle.admit(0.0, nbytes=4096)
    assert delay > 0
    throttle.wait_started()
    assert throttle.queue_depth == 1
    throttle.wait_finished()
    assert throttle.queue_depth == 0
    assert throttle.admitted == 1
    assert throttle.throttled == 1
    assert obs.value("fleet.acme.bytes_admitted") == 8192
    assert obs.histogram("fleet.acme.throttle_delay_s").count == 1


def test_throttle_byte_axis_binds_too():
    throttle = TenantThrottle("b", QoSLimits(bytes_per_s=4096.0, burst_bytes=4096))
    assert throttle.admit(0.0, nbytes=4096) == 0.0
    # the byte bucket, not the (absent) op bucket, forces the wait
    assert throttle.admit(0.0, nbytes=8192) == pytest.approx(2.0)


def test_throttle_set_is_get_or_create():
    throttles = ThrottleSet()
    a = throttles.get("a", QoSLimits(iops=5))
    assert throttles.get("a") is a  # later limits are ignored
    throttles.get("b")
    assert throttles.tenants() == ["a", "b"]
    assert "a" in throttles and len(throttles) == 2


# -- timed fleet ---------------------------------------------------------------


def hdd_cluster(sim):
    return StorageCluster(sim, 1, 6, lambda s, n: HDD(s, HDDSpec(), name=n))


def make_fleet_rig():
    sim = Simulator()
    machine = ClientMachine(sim)
    backend = make_sharded_backend(sim, machine.network, hdd_cluster, 4)
    return sim, FleetRuntime(sim, machine, backend, obs=Registry())


def test_fleet_runtime_registry():
    _, fleet = make_fleet_rig()
    fleet.add_vdisk("vd0", tenant="a", volume_size=1 * GiB, cache_size=64 * MiB)
    fleet.add_vdisk("vd1", tenant="a", volume_size=1 * GiB, cache_size=64 * MiB)
    with pytest.raises(ValueError):
        fleet.add_vdisk("vd0", tenant="b", volume_size=1 * GiB, cache_size=64 * MiB)
    assert len(fleet) == 2
    assert fleet.tenant_of("vd1") == "a"
    assert [d.name for d in fleet.vdisks()] == ["vd0", "vd1"]
    assert fleet.tenants() == ["a"]
    assert fleet.obs.value("fleet.vdisks") == 2


def test_throttled_vdisk_is_capped_and_peer_is_not():
    """An iops cap holds in the timed pipeline: the capped tenant lands at
    its limit (plus burst), the unlimited peer on the same rig does not."""
    sim, fleet = make_fleet_rig()
    capped = fleet.add_vdisk(
        "vd0",
        tenant="t0",
        volume_size=1 * GiB,
        cache_size=64 * MiB,
        limits=QoSLimits(iops=2000.0),
        gc_enabled=False,
    )
    free = fleet.add_vdisk(
        "vd1", tenant="t1", volume_size=1 * GiB, cache_size=64 * MiB, gc_enabled=False
    )
    job = lambda seed: FioJob(rw="randwrite", bs=4096, iodepth=8, size=1 * GiB, seed=seed)
    res_capped, res_free = run_jobs(
        sim, [(capped, job(1)), (free, job(2))], duration=0.5
    )
    # burst allowance (50 ms of rate) is the only headroom over the cap
    assert res_capped.iops <= 2000.0 * 1.15
    assert res_free.iops > res_capped.iops * 1.3
    assert fleet.obs.value("fleet.t0.throttled") > 0
    assert fleet.obs.value("fleet.t1.throttled") == 0
    # the gauge counts waiters still queued when the clock cut off the
    # run — never more than the job's workers, and none for the free peer
    assert 0 <= fleet.obs.value("fleet.t0.queue_depth") <= 8
    assert fleet.obs.value("fleet.t1.queue_depth") == 0


def test_throttle_delay_is_served_on_the_simulated_clock():
    sim, fleet = make_fleet_rig()
    device = fleet.add_vdisk(
        "vd0",
        tenant="slow",
        volume_size=1 * GiB,
        cache_size=64 * MiB,
        limits=QoSLimits(iops=100.0, burst_ops=1),
        gc_enabled=False,
    )
    [result] = run_jobs(
        sim,
        [(device, FioJob(rw="randwrite", bs=4096, iodepth=4, size=1 * GiB, seed=3))],
        duration=0.5,
    )
    # 100 IOPS cap, 0.5 s window: ~50 ops regardless of device speed
    assert 30 <= result.ops <= 60
    assert fleet.obs.value("fleet.slow.throttled") > 0


def test_noisy_neighbour_isolation():
    """A QoS cap on the bulk tenant restores the victim's tail latency:
    victim p99 next to the capped neighbour must sit well below its p99
    next to the same neighbour unthrottled."""

    def run(noisy_limits):
        sim, fleet = make_fleet_rig()
        victim = fleet.add_vdisk(
            "victim",
            tenant="victim",
            volume_size=1 * GiB,
            cache_size=64 * MiB,
            gc_enabled=False,
        )
        noisy = fleet.add_vdisk(
            "noisy",
            tenant="noisy",
            volume_size=4 * GiB,
            cache_size=4 * GiB,
            limits=noisy_limits,
            gc_enabled=False,
        )
        results = run_jobs(
            sim,
            [
                (victim, FioJob(rw="randwrite", bs=4096, iodepth=1, size=1 * GiB, seed=1)),
                (noisy, FioJob(rw="randwrite", bs=256 * 1024, iodepth=32, size=1 * GiB, seed=2)),
            ],
            duration=0.3,
        )
        return results[0].latency_percentile(99)

    p99_unthrottled = run(None)
    p99_capped = run(QoSLimits(iops=100.0, burst_ops=1))
    assert p99_capped < p99_unthrottled / 4, (p99_capped, p99_unthrottled)
