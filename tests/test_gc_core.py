"""Focused tests for the core garbage collector's edge cases."""


from repro.core.block_store import BlockStore
from repro.core.config import LSVDConfig
from repro.core.gc import GarbageCollector
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=1000)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_store(**kw):
    store = InMemoryObjectStore()
    bs = BlockStore.create(store, "vol", 64 * MiB, small_config(**kw))
    return store, bs


def write_and_commit(bs, lba, data):
    for sealed in bs.add_write(lba, data):
        bs.commit(sealed)


def flush(bs):
    for sealed in bs.seal_all():
        bs.commit(sealed)


def test_gc_noop_on_empty_store():
    _store, bs = make_store()
    gc = GarbageCollector(bs)
    assert not gc.needs_gc()
    assert gc.plan() is None


def test_gc_noop_when_everything_live():
    _store, bs = make_store()
    for i in range(64):
        write_and_commit(bs, i * 4096, bytes([i + 1]) * 4096)
    flush(bs)
    gc = GarbageCollector(bs)
    assert not gc.needs_gc()


def test_gc_skips_victims_above_high_watermark():
    """Objects >= the stop watermark are never picked: cleaning them
    cannot raise utilisation."""
    _store, bs = make_store()
    for i in range(16):
        write_and_commit(bs, i * 4096, b"a" * 4096)
    flush(bs)
    # overwrite a single block: the old object drops to 15/16 = 0.9375
    write_and_commit(bs, 0, b"b" * 4096)
    flush(bs)
    gc = GarbageCollector(bs)
    plan_victims = [
        c.seq for c in bs.omap.cleaning_candidates(max_seq=bs.next_seq)
    ]
    assert plan_victims  # candidates exist...
    assert gc.plan() is None  # ...but none below the cutoff


def test_gc_fully_dead_object_deleted_without_copies():
    store, bs = make_store()
    for i in range(16):
        write_and_commit(bs, i * 4096, b"v1" * 2048)
    flush(bs)
    for i in range(16):
        write_and_commit(bs, i * 4096, b"v2" * 2048)
    flush(bs)
    # write unrelated live data so utilisation math has a denominator
    # (128K dead + 256K live of 512K total = 0.67 < the 0.70 trigger)
    for i in range(64, 80):
        write_and_commit(bs, i * 4096, b"v3" * 2048)
    flush(bs)
    gc = GarbageCollector(bs)
    assert gc.needs_gc()
    plan = gc.plan()
    assert plan is not None
    dead = [v for v in plan.victims if bs.omap.objects[v].live_bytes == 0]
    assert dead
    gc.execute(plan)
    bs.write_checkpoint()
    deleted, deferred = gc.delete_victims(plan.victims)
    assert set(dead) <= set(deleted)
    assert not deferred
    assert gc.stats.bytes_relocated == plan.live_bytes


def test_gc_hole_plugging_merges_extents():
    store, bs = make_store(defrag_hole_bytes=8192)
    # live pattern: pages 0,2,4,... (odd pages overwritten later)
    for i in range(32):
        write_and_commit(bs, i * 4096, bytes([1]) * 4096)
    flush(bs)
    for i in range(1, 32, 2):
        write_and_commit(bs, i * 4096, bytes([2]) * 4096)
    flush(bs)
    for i in range(128, 160):
        write_and_commit(bs, i * 4096, bytes([3]) * 4096)
    flush(bs)
    gc = GarbageCollector(bs, bs.config)
    plan = gc.plan()
    if plan is not None and plan.pieces:
        assert plan.holes_plugged >= 0
        gc.execute(plan)
        bs.write_checkpoint()
        gc.delete_victims(plan.victims)
    # data still correct
    from tests.test_block_store import read_all

    assert read_all(bs, 0, 4096) == bytes([1]) * 4096
    assert read_all(bs, 1 * 4096, 4096) == bytes([2]) * 4096


def test_gc_stats_accumulate_over_rounds():
    store, bs = make_store()
    gc = GarbageCollector(bs)
    rounds_run = 0
    for round_ in range(5):
        for i in range(64):
            write_and_commit(bs, i * 4096, bytes([round_ + 1]) * 4096)
        flush(bs)
        while gc.needs_gc():
            plan = gc.plan()
            if plan is None:
                break
            gc.execute(plan)
            bs.write_checkpoint()
            gc.delete_victims(plan.victims)
            rounds_run += 1
    assert gc.stats.rounds == rounds_run
    assert gc.stats.victims_cleaned >= rounds_run
