"""Invariant checks under randomized workloads (GC, crash, clones)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LSVDConfig, LSVDVolume
from repro.core.validate import check_volume_invariants
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def make_volume(size=8 * MiB):
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", size, DiskImage(2 * MiB), cfg)
    return store, cfg, vol


def test_fresh_volume_passes():
    _store, _cfg, vol = make_volume()
    assert check_volume_invariants(vol).ok


def test_invariants_after_heavy_churn_and_gc():
    _store, _cfg, vol = make_volume(size=4 * MiB)
    rng = random.Random(1)
    for i in range(2500):
        vol.write(rng.randrange(0, 1024) * 4096, bytes([i % 255 + 1]) * 4096)
        if i % 500 == 499:
            report = check_volume_invariants(vol)
            assert report.ok, report.violations[:5]
    vol.drain()
    assert vol.gc.stats.victims_cleaned > 0
    report = check_volume_invariants(vol)
    assert report.ok, report.violations[:5]


def test_invariants_after_crash_recovery():
    store, cfg, vol = make_volume()
    image = vol.wc.image
    rng = random.Random(2)
    for i in range(300):
        vol.write(rng.randrange(0, 1024) * 4096, b"z" * 4096)
    vol.flush()
    image.crash(rng=rng)
    vol2 = LSVDVolume.open(store, "vd", image, cfg)
    report = check_volume_invariants(vol2)
    assert report.ok, report.violations[:5]


def test_invariants_on_clone():
    store, cfg, vol = make_volume()
    for i in range(64):
        vol.write(i * 4096, b"b" * 4096)
    vol.close()
    clone = LSVDVolume.clone(store, "vd", "c", DiskImage(2 * MiB), cfg)
    for i in range(512):
        clone.write((i % 128) * 4096, bytes([i % 250 + 1]) * 4096)
    clone.drain()
    report = check_volume_invariants(clone)
    assert report.ok, report.violations[:5]


def test_checker_detects_planted_corruption():
    _store, _cfg, vol = make_volume()
    vol.write(0, b"x" * 4096)
    vol.drain()
    # corrupt the accounting behind the checker's back
    seq = next(iter(s for s, i in vol.bs.omap.objects.items() if i.live_bytes))
    vol.bs.omap.objects[seq].live_bytes += 1
    report = check_volume_invariants(vol)
    assert not report.ok
    assert any("accounting says" in v for v in report.violations)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=20, max_value=300),
)
def test_invariants_hold_under_random_ops(seed, n_ops):
    _store, _cfg, vol = make_volume(size=4 * MiB)
    rng = random.Random(seed)
    for i in range(n_ops):
        action = rng.random()
        page = rng.randrange(0, 1024)
        if action < 0.7:
            vol.write(page * 4096, bytes([i % 255 + 1]) * 4096)
        elif action < 0.8:
            vol.read(page * 4096, 4096)
        elif action < 0.9:
            vol.trim(page * 4096, 4096)
        else:
            vol.flush()
    vol.drain()
    report = check_volume_invariants(vol)
    assert report.ok, report.violations[:5]
