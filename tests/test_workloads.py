"""Tests for workload generators and their Table 3 / Table 5 calibration."""

import itertools

import pytest

from repro.workloads import (
    TRACE_PRESETS,
    CloudPhysicsTrace,
    FioJob,
    collect_stats,
    fileserver,
    oltp,
    varmail,
)
from repro.workloads.base import FLUSH, READ, WRITE, take

KiB = 1024
MiB = 1024 * 1024


# -- fio ----------------------------------------------------------------------


def test_fio_randwrite_generates_aligned_writes():
    job = FioJob(rw="randwrite", bs=16 * KiB, size=1 << 30, seed=1)
    ops = take(job.ops(), 1000)
    assert all(op.kind == WRITE for op in ops)
    assert all(op.length == 16 * KiB for op in ops)
    assert all(op.offset % (16 * KiB) == 0 for op in ops)
    assert all(op.offset + op.length <= 1 << 30 for op in ops)


def test_fio_sequential_covers_in_order():
    job = FioJob(rw="write", bs=4 * KiB, size=64 * KiB)
    ops = take(job.ops(), 32)
    offsets = [op.offset for op in ops[:16]]
    assert offsets == [i * 4 * KiB for i in range(16)]
    assert ops[16].offset == 0  # wraps


def test_fio_randread_reads():
    job = FioJob(rw="randread", bs=4 * KiB, size=1 << 20)
    assert all(op.kind == READ for op in take(job.ops(), 100))


def test_fio_mixed_mode():
    job = FioJob(rw="randrw", bs=4 * KiB, size=1 << 20, rwmixread=0.5, seed=3)
    kinds = {op.kind for op in take(job.ops(), 200)}
    assert kinds == {READ, WRITE}


def test_fio_fsync_every_inserts_barriers():
    job = FioJob(rw="randwrite", bs=4 * KiB, size=1 << 20, fsync_every=5)
    ops = take(job.ops(), 60)
    stats = collect_stats(ops)
    assert stats.barriers > 0
    assert stats.writes_between_syncs == pytest.approx(5, abs=1)


def test_fio_deterministic_per_seed():
    a = take(FioJob(rw="randwrite", seed=7).ops(), 50)
    b = take(FioJob(rw="randwrite", seed=7).ops(), 50)
    assert a == b


def test_fio_rejects_bad_params():
    with pytest.raises(ValueError):
        FioJob(rw="bogus")
    with pytest.raises(ValueError):
        FioJob(bs=1000)
    with pytest.raises(ValueError):
        FioJob(bs=4096, size=1024)
    with pytest.raises(ValueError):
        FioJob(distribution="pareto")
    with pytest.raises(ValueError):
        FioJob(distribution="hotspot", hotspot_frac=1.5)


def test_fio_label():
    assert FioJob(rw="randwrite", bs=16 * KiB, iodepth=32).label() == (
        "randwrite-bs16K-qd32"
    )
    assert FioJob(rw="randwrite", distribution="zipfian").label() == (
        "randwrite-bs4K-qd16-zipfian"
    )


@pytest.mark.parametrize("distribution", ["zipfian", "hotspot"])
def test_fio_skewed_distributions_deterministic_per_seed(distribution):
    def offsets(seed):
        job = FioJob(
            rw="randwrite", bs=4 * KiB, size=8 * MiB, seed=seed,
            distribution=distribution,
        )
        return [op.offset for op in take(job.ops(), 400)]

    assert offsets(7) == offsets(7)
    assert offsets(7) != offsets(8)


def test_fio_zipfian_is_skewed_and_in_bounds():
    job = FioJob(
        rw="randwrite", bs=4 * KiB, size=8 * MiB, seed=3, distribution="zipfian"
    )
    ops = take(job.ops(), 4000)
    assert all(op.offset % (4 * KiB) == 0 for op in ops)
    assert all(0 <= op.offset < 8 * MiB for op in ops)
    counts = {}
    for op in ops:
        counts[op.offset] = counts.get(op.offset, 0) + 1
    top = sorted(counts.values(), reverse=True)
    blocks = 8 * MiB // (4 * KiB)
    # the 5% hottest blocks absorb most of the traffic — far from uniform,
    # where each block would see ~2 of the 4000 ops
    assert sum(top[: blocks // 20]) > 0.5 * len(ops)


def test_fio_hotspot_concentrates_traffic():
    job = FioJob(
        rw="randwrite", bs=4 * KiB, size=8 * MiB, seed=3,
        distribution="hotspot", hotspot_frac=0.1, hotspot_rate=0.9,
    )
    ops = take(job.ops(), 4000)
    hot_limit = int((8 * MiB // (4 * KiB)) * 0.1) * 4 * KiB
    hot = sum(1 for op in ops if op.offset < hot_limit)
    assert 0.8 * len(ops) < hot < len(ops)


# -- filebench: Table 3 calibration ------------------------------------------


def stats_for(model, n_ops=120_000):
    return collect_stats(take(model.ops(seed=5), n_ops))


def test_varmail_sync_heavy():
    """Table 3: varmail ~7.6 writes / ~131 KiB between syncs."""
    stats = stats_for(varmail(1 << 30))
    assert stats.writes_between_syncs == pytest.approx(7.6, rel=0.4)
    assert stats.bytes_between_syncs == pytest.approx(131 * KiB, rel=0.5)


def test_oltp_small_writes_frequent_syncs():
    """Table 3: oltp ~42.7 writes / ~199 KiB between syncs, ~4.7 KiB mean."""
    stats = stats_for(oltp(1 << 30))
    assert stats.writes_between_syncs == pytest.approx(42.7, rel=0.4)
    assert stats.mean_write_size == pytest.approx(4.7 * KiB, rel=0.5)


def test_fileserver_rare_syncs_big_writes():
    """Table 3: fileserver ~12865 writes between syncs, ~94 KiB mean."""
    stats = stats_for(fileserver(1 << 30), n_ops=200_000)
    assert stats.writes_between_syncs > 2000
    assert stats.mean_write_size > 40 * KiB


def test_sync_heaviness_ordering_matches_paper():
    """varmail syncs hardest, then oltp, then fileserver."""
    v = stats_for(varmail(1 << 30)).writes_between_syncs
    o = stats_for(oltp(1 << 30)).writes_between_syncs
    f = stats_for(fileserver(1 << 30)).writes_between_syncs
    assert v < o < f


def test_filebench_ops_stay_in_bounds():
    for model in (fileserver(256 * MiB), oltp(256 * MiB), varmail(256 * MiB)):
        for op in take(model.ops(seed=2), 30_000):
            if op.kind != FLUSH:
                assert 0 <= op.offset
                assert op.offset + op.length <= model.volume_size


def test_varmail_overwrites_generate_garbage():
    """varmail re-writes the same space (drives Figure 15's GC)."""
    ops = [op for op in take(varmail(256 * MiB).ops(seed=4), 50_000) if op.kind == WRITE]
    offsets = [op.offset for op in ops]
    assert len(set(offsets)) < len(offsets) * 0.6


# -- cloudphysics -------------------------------------------------------------


def test_presets_cover_table5_rows():
    assert set(TRACE_PRESETS) == {
        "w10", "w04", "w66", "w01", "w07", "w31", "w59", "w41", "w05"
    }


def test_trace_generates_declared_volume():
    trace = CloudPhysicsTrace(TRACE_PRESETS["w66"], scale=1 / 512, seed=1)
    total = sum(length for _off, length in trace.writes())
    assert total >= trace.total_bytes
    assert total < trace.total_bytes * 1.1


def test_trace_writes_page_aligned_and_bounded():
    trace = CloudPhysicsTrace(TRACE_PRESETS["w01"], scale=1 / 512, seed=2)
    for off, length in itertools.islice(trace.writes(), 5000):
        assert off % 4096 == 0
        assert length % 4096 == 0
        assert off + length <= trace.volume_size


def test_trace_deterministic():
    a = list(itertools.islice(CloudPhysicsTrace(TRACE_PRESETS["w41"], 1 / 512, seed=3).writes(), 100))
    b = list(itertools.islice(CloudPhysicsTrace(TRACE_PRESETS["w41"], 1 / 512, seed=3).writes(), 100))
    assert a == b


def test_overwrite_heavy_trace_repeats_offsets():
    """w41 has merge ratio 0.71 in Table 5: lots of short-horizon
    re-writes; w01 (merge 0.11) spreads tiny writes over a wide span."""
    w41 = list(itertools.islice(CloudPhysicsTrace(TRACE_PRESETS["w41"], 1 / 512, seed=1).writes(), 20000))
    w01 = list(itertools.islice(CloudPhysicsTrace(TRACE_PRESETS["w01"], 1 / 512, seed=1).writes(), 20000))

    def repeat_rate(writes, window=512):
        seen, repeats = [], 0
        for off, _ in writes:
            if off in seen:
                repeats += 1
            seen.append(off)
            if len(seen) > window:
                seen.pop(0)
        return repeats / len(writes)

    assert repeat_rate(w41) > repeat_rate(w01) + 0.1
