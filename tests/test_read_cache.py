"""Tests for the FIFO read cache (§3.1)."""

import pytest

from repro.core.read_cache import ReadCache
from repro.devices.image import DiskImage

MiB = 1 << 20


def make_cache(size=2 * MiB, slot=128 * 1024):
    img = DiskImage(size, name="rc-ssd")
    return ReadCache(img, 0, size, map_slot_size=slot)


def test_insert_and_read_back():
    rc = make_cache()
    rc.insert(4096, b"R" * 4096)
    [(lba, length, data)] = rc.read(4096, 4096)
    assert (lba, length, data) == (4096, 4096, b"R" * 4096)


def test_miss_returns_empty_and_counts():
    rc = make_cache()
    assert rc.read(0, 4096) == []
    rc.insert(0, b"x" * 4096)
    rc.read(0, 4096)
    assert rc.misses == 1
    assert rc.hits == 1
    assert rc.hit_rate == pytest.approx(0.5)


def test_partial_hit():
    rc = make_cache()
    rc.insert(0, b"a" * 4096)
    pieces = rc.read(0, 8192)
    assert len(pieces) == 1
    assert pieces[0][:2] == (0, 4096)


def test_invalidate_removes_range():
    rc = make_cache()
    rc.insert(0, b"a" * 8192)
    rc.invalidate(0, 4096)
    pieces = rc.read(0, 8192)
    assert [(p[0], p[1]) for p in pieces] == [(4096, 4096)]


def test_fifo_eviction_when_full():
    rc = make_cache(size=512 * 1024 + 128 * 1024)  # 512K data area
    n = 0
    # insert 1 MiB of distinct blocks: early ones must be evicted
    for i in range(256):
        rc.insert(i * 4096, bytes([i % 251 + 1]) * 4096)
        n += 1
    assert rc.read(0, 4096) == []  # oldest gone
    [(_, _, data)] = rc.read(255 * 4096, 4096)  # newest present
    assert data == bytes([255 % 251 + 1]) * 4096
    assert rc.evicted_bytes > 0


def test_reinsert_after_eviction_works():
    rc = make_cache(size=512 * 1024 + 128 * 1024)
    for i in range(300):
        rc.insert((i % 40) * 4096, bytes([(i % 250) + 1]) * 4096)
    # last writer wins for every lba still cached: i=299 wrote lba 19*4096
    [(_, _, data)] = rc.read(19 * 4096, 4096)
    assert data == bytes([(299 % 250) + 1]) * 4096


def test_oversized_insert_is_skipped():
    rc = make_cache(size=256 * 1024 + 128 * 1024)
    rc.insert(0, b"z" * (1 << 20))
    assert rc.read(0, 4096) == []


def test_unaligned_length_padded_footprint():
    rc = make_cache()
    rc.insert(0, b"q" * 1000)
    [(lba, length, data)] = rc.read(0, 1000)
    assert data == b"q" * 1000


def test_save_and_load_map():
    rc = make_cache()
    rc.insert(0, b"warm" * 1024)
    rc.save_map()
    fresh = ReadCache(rc.image, 0, rc.image.size, map_slot_size=rc.slot_size)
    assert fresh.load_map()
    [(_, _, data)] = fresh.read(0, 4096)
    assert data == b"warm" * 1024


def test_load_map_cold_on_garbage():
    rc = make_cache()
    fresh = ReadCache(rc.image, 0, rc.image.size, map_slot_size=rc.slot_size)
    assert not fresh.load_map()


def test_clear_empties():
    rc = make_cache()
    rc.insert(0, b"a" * 4096)
    rc.clear()
    assert rc.read(0, 4096) == []


def test_region_too_small_rejected():
    img = DiskImage(64 * 1024)
    with pytest.raises(ValueError):
        ReadCache(img, 0, 64 * 1024, map_slot_size=64 * 1024)


def test_eviction_precise_clipping():
    """Evicting a region must clip overlapping entries, not nuke them."""
    rc = make_cache(size=256 * 1024 + 128 * 1024)  # 256K ring
    rc.insert(0, b"A" * 16384)  # occupies ring [0, 16K)
    # fill the rest of the ring exactly
    rc.insert(1 << 20, b"B" * (256 * 1024 - 16384))
    # next insert wraps and overwrites part of the first entry
    rc.insert(2 << 20, b"C" * 8192)
    pieces = rc.read(0, 16384)
    # the first 8K of entry A was evicted; the tail may survive
    for lba, length, _data in pieces:
        assert lba >= 8192
