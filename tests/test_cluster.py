"""Tests for the storage-cluster simulator and data layouts."""

import pytest

from repro.cluster import ErasureCodedLayout, ReplicationLayout, StorageCluster
from repro.devices.hdd import HDD, HDDSpec
from repro.devices.ssd import SSD, SSDSpec
from repro.sim import Simulator


def hdd_cluster(sim, servers=9, per_server=7):
    return StorageCluster(
        sim, servers, per_server, lambda s, n: HDD(s, HDDSpec.sas_10k(), name=n)
    )


def ssd_cluster(sim, servers=4, per_server=8):
    return StorageCluster(
        sim, servers, per_server, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )


def run(sim, gen):
    return sim.run_until_event(sim.process(gen))


def test_cluster_builds_configured_pool():
    sim = Simulator()
    cluster = hdd_cluster(sim)
    assert len(cluster) == 63


def test_placement_deterministic_and_distinct():
    sim = Simulator()
    cluster = hdd_cluster(sim)
    a = cluster.placement("vol.obj1", 3)
    b = cluster.placement("vol.obj1", 3)
    assert [d.name for d in a] == [d.name for d in b]
    assert len({d.name for d in a}) == 3


def test_placement_spreads_over_pool():
    sim = Simulator()
    cluster = hdd_cluster(sim)
    used = set()
    for i in range(300):
        for disk in cluster.placement(f"obj{i}", 3):
            used.add(disk.name)
    assert len(used) > len(cluster) * 0.8


def test_placement_wider_than_pool_rejected():
    sim = Simulator()
    cluster = StorageCluster(sim, 1, 2, lambda s, n: SSD(s, name=n))
    with pytest.raises(ValueError):
        cluster.placement("x", 3)


def test_replication_layout_six_writes_per_client_write():
    """§4.5: one data write plus one journal write at each of 3 replicas."""
    sim = Simulator()
    cluster = ssd_cluster(sim)
    layout = ReplicationLayout()
    assert layout.device_writes_per_client_write() == 6

    def client():
        for i in range(10):
            yield layout.write(cluster, f"vol.obj{i}", 0, 16 * 1024)

    run(sim, client())
    totals = cluster.totals()
    assert totals.writes == 60
    # journal entries are data + overhead: bytes > 2x client bytes x3
    assert totals.written_bytes == 10 * (16 * 1024 * 2 + 4096) * 3


def test_replication_read_hits_one_disk():
    sim = Simulator()
    cluster = ssd_cluster(sim)
    layout = ReplicationLayout()

    def client():
        yield layout.read(cluster, "vol.obj0", 0, 4096)

    run(sim, client())
    assert cluster.totals().reads == 1


def test_ec_layout_write_count_matches_paper():
    """§4.5: ~64 device writes to store one 4 MiB object with 4,2 EC."""
    sim = Simulator()
    cluster = hdd_cluster(sim)
    layout = ErasureCodedLayout()
    assert layout.device_writes_per_object() == 64
    assert layout.expansion == pytest.approx(1.5)

    def client():
        yield layout.put(cluster, "vd.00000001", 4 * 1024 * 1024)

    run(sim, client())
    totals = cluster.totals()
    assert totals.writes == 64
    # 6 MiB of chunks + small metadata
    assert totals.written_bytes == pytest.approx(6 * 1024 * 1024, rel=0.1)


def test_ec_get_range_reads_subset():
    sim = Simulator()
    cluster = hdd_cluster(sim)
    layout = ErasureCodedLayout()

    def client():
        yield layout.put(cluster, "vd.00000001", 4 * 1024 * 1024)
        yield layout.get_range(cluster, "vd.00000001", 65536, 65536)

    run(sim, client())
    assert cluster.totals().reads >= 1


def test_ec_delete_touches_placement_set():
    sim = Simulator()
    cluster = hdd_cluster(sim)
    layout = ErasureCodedLayout()

    def client():
        yield layout.delete(cluster, "vd.00000001")

    run(sim, client())
    assert cluster.totals().writes == 6


def test_utilization_reflects_load():
    sim = Simulator()
    cluster = hdd_cluster(sim, servers=2, per_server=2)
    layout = ReplicationLayout()

    def client():
        for i in range(200):
            yield layout.write(cluster, f"o{i}", i * 16384, 16 * 1024)

    run(sim, client())
    util = cluster.mean_utilization()
    assert 0.0 < util <= 1.0


def test_write_size_histogram_separates_small_and_large():
    sim = Simulator()
    cluster = hdd_cluster(sim)
    rep, ec = ReplicationLayout(), ErasureCodedLayout()

    def client():
        yield rep.write(cluster, "a", 0, 16 * 1024)
        yield ec.put(cluster, "b", 4 * 1024 * 1024)

    run(sim, client())
    hist = cluster.write_size_histogram()
    small = sum(v for k, v in hist.items() if k <= 32 * 1024)
    large = sum(v for k, v in hist.items() if k >= 512 * 1024)
    assert small > 0 and large > 0


def test_reset_stats_zeroes_counters():
    sim = Simulator()
    cluster = ssd_cluster(sim, 1, 2)
    layout = ReplicationLayout(copies=2)

    def client():
        yield layout.write(cluster, "x", 0, 4096)

    run(sim, client())
    assert cluster.totals().writes > 0
    cluster.reset_stats()
    assert cluster.totals().writes == 0
