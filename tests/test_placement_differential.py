"""Differential test: gcsim vs the full stack under one placement policy.

The wa_smoke benchmark measures placement on the page-map simulator and
claims the numbers for the full stack; LSVD017 keeps classification
confined to ``core/placement.py``.  This test closes the loop: the same
seeded skewed write stream is replayed through :class:`GCSimulator` and
through ``BlockStore`` + ``GarbageCollector`` with identically-configured
recording policies, and the two engines must agree *exactly* on

* the class assigned to every client write (the ``on_write`` trace),
* per-class destaged and GC-relocated byte totals, and
* the final per-class occupancy of the backend.

The GC trigger discipline is mirrored (a cleaning check after every
stored object, rounds until the stop watermark) and the victim window is
made larger than any candidate pool, so each round cleans the *set* of
all eligible victims — the one place the engines are allowed to differ
is object numbering (the simulator interleaves GC object ids into a
seal group, the store pre-allocates the group's seqs), and a set-sized
window keeps that numbering out of the comparison.
"""

import pytest

from repro.core.block_store import BlockStore
from repro.core.config import LSVDConfig
from repro.core.gc import GarbageCollector
from repro.core.placement import NUM_TEMPS, make_policy
from repro.gcsim import GCSimulator
from repro.objstore import InMemoryObjectStore
from repro.workloads import FioJob
from repro.workloads.base import WRITE, take

KiB = 1 << 10
MiB = 1 << 20

VOLUME = 2 * MiB
BATCH = 16 * KiB
OPS = 1500
WINDOW = 1 << 16  # larger than any candidate pool: a round takes the whole set

CASES = [("sepbit", "cost_benefit"), ("legacy", "greedy")]


def write_stream(distribution: str, seed: int):
    job = FioJob(
        rw="randwrite", bs=4096, size=VOLUME, seed=seed, distribution=distribution
    )
    return [
        (op.offset, op.length)
        for op in take(job.ops(), OPS)
        if op.kind == WRITE
    ]


def mirror_gc(gc: GarbageCollector) -> None:
    """The GCSimulator._maybe_gc discipline on the full stack."""
    if not gc.needs_gc():
        return
    while not gc.reached_target():
        plan = gc.plan()
        if plan is None:
            break
        gc.execute(plan)
        gc.delete_victims(plan.victims)


def run_gcsim(stream, placement: str, gc_policy: str) -> GCSimulator:
    sim = GCSimulator(
        VOLUME,
        batch_size=BATCH,
        policy=make_policy(placement, record=True),
        gc_policy=gc_policy,
        gc_window=WINDOW,
    )
    for offset, length in stream:
        sim.write(offset, length)
    sim.flush_batch()
    return sim


def run_full_stack(stream, placement: str, gc_policy: str):
    config = LSVDConfig(
        batch_size=BATCH,
        placement=placement,
        gc_policy=gc_policy,
        gc_window=WINDOW,
        checkpoint_interval=1 << 30,  # keep checkpoints out of the stream
    )
    bs = BlockStore.create(InMemoryObjectStore(), "vol", VOLUME, config)
    bs.placement = make_policy(placement, record=True)
    gc = GarbageCollector(bs)
    fill = 0
    for offset, length in stream:
        fill = (fill % 251) + 1
        for sealed in bs.add_write(offset, bytes([fill]) * length):
            bs.commit(sealed)
            mirror_gc(gc)
    for sealed in bs.seal_all():
        bs.commit(sealed)
        mirror_gc(gc)
    return bs, gc


@pytest.mark.parametrize("placement,gc_policy", CASES)
@pytest.mark.parametrize("distribution", ["zipfian", "hotspot"])
def test_engines_agree_on_classes_and_relocation(placement, gc_policy, distribution):
    stream = write_stream(distribution, seed=7)
    sim = run_gcsim(stream, placement, gc_policy)
    bs, gc = run_full_stack(stream, placement, gc_policy)

    # every client write got the same temperature class, in order
    assert sim.policy.trace == bs.placement.trace
    # ...so per-class destage totals agree byte for byte
    assert sim.policy.write_bytes == bs.placement.write_bytes
    # GC rounds matched: relocation classified identically
    assert sim.policy.reloc_bytes == bs.placement.reloc_bytes
    assert sim.gc_pages * 4096 == gc.stats.bytes_relocated

    # object-stream parity: per-class backend bytes ever written
    for temp in range(NUM_TEMPS):
        assert sim.class_pages.get(temp, 0) * 4096 == (
            bs.stats.class_data_bytes(temp) + bs.stats.class_gc_bytes(temp)
        )

    # final backend state: per-class (live, total) occupancy agrees
    # (the store enumerates classes with no objects as (0, 0); the
    # simulator omits them — normalize by dropping empties)
    full = {t: lt for t, lt in bs.occupancy_by_class().items() if lt != (0, 0)}
    page = {
        temp: (live * 4096, total * 4096)
        for temp, (live, total) in sim.occupancy_by_class().items()
        if (live, total) != (0, 0)
    }
    assert page == full


def test_zipfian_stream_actually_exercises_every_class():
    """Guard the fixture: a parity test over a degenerate stream (one
    class, no GC) would pass vacuously."""
    stream = write_stream("zipfian", seed=7)
    sim = run_gcsim(stream, "sepbit", "cost_benefit")
    assert sim.gc_pages > 0
    assert all(sim.policy.write_bytes[t] > 0 for t in range(NUM_TEMPS))
    assert sum(sim.policy.reloc_bytes) > 0
