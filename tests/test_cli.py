"""Tests for the volume-management CLI."""

import pytest

from repro.cli import main, parse_size


def run(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr()
    return rc, out.out, out.err


def test_parse_size():
    assert parse_size("512") == 512
    assert parse_size("4K") == 4096
    assert parse_size("64M") == 64 << 20
    assert parse_size("1G") == 1 << 30
    with pytest.raises(Exception):
        parse_size("abc")
    with pytest.raises(Exception):
        parse_size("-5")


def test_create_info_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "bucket")
    rc, out, _ = run(capsys, root, "create", "vol", "--size", "32M")
    assert rc == 0 and "created" in out
    rc, out, _ = run(capsys, root, "info", "vol")
    assert rc == 0
    assert "size:       33554432" in out


def test_create_twice_errors(tmp_path, capsys):
    root = str(tmp_path)
    run(capsys, root, "create", "vol")
    rc, _out, err = run(capsys, root, "create", "vol")
    assert rc == 2
    assert "error" in err


def test_import_export_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "bucket")
    payload = bytes(range(256)) * 64  # 16 KiB
    src = tmp_path / "in.bin"
    src.write_bytes(payload)
    dst = tmp_path / "out.bin"
    run(capsys, root, "create", "vol", "--size", "16M")
    rc, out, _ = run(capsys, root, "import", "vol", str(src), "--offset", "4K")
    assert rc == 0
    rc, out, _ = run(
        capsys, root, "export", "vol", str(dst), "--offset", "4K", "--length", "16K"
    )
    assert rc == 0
    assert dst.read_bytes() == payload


def test_snapshot_and_clone(tmp_path, capsys):
    root = str(tmp_path)
    src = tmp_path / "data.bin"
    src.write_bytes(b"GOLD" * 1024)
    run(capsys, root, "create", "vol", "--size", "16M")
    run(capsys, root, "import", "vol", str(src))
    rc, out, _ = run(capsys, root, "snapshot", "vol", "v1")
    assert rc == 0 and "snapshot 'v1'" in out
    rc, out, _ = run(capsys, root, "clone", "vol", "dev", "--snapshot", "v1")
    assert rc == 0 and "cloned vol@v1 -> dev" in out
    exported = tmp_path / "clone.bin"
    rc, _out, _ = run(capsys, root, "export", "dev", str(exported), "--length", "4K")
    assert rc == 0
    assert exported.read_bytes() == b"GOLD" * 1024


def test_fsck_and_scrub_clean(tmp_path, capsys):
    root = str(tmp_path)
    run(capsys, root, "create", "vol")
    rc, out, _ = run(capsys, root, "fsck", "vol")
    assert rc == 0 and "no errors" in out
    rc, out, _ = run(capsys, root, "scrub", "vol")
    assert rc == 0 and "scrubbed" in out


def test_replicate_command(tmp_path, capsys):
    root = str(tmp_path / "a")
    target = str(tmp_path / "b")
    src = tmp_path / "data.bin"
    src.write_bytes(b"R" * 8192)
    run(capsys, root, "create", "vol", "--size", "16M")
    run(capsys, root, "import", "vol", str(src))
    rc, out, _ = run(capsys, root, "replicate", "vol", target)
    assert rc == 0 and "replicated" in out
    # the replica mounts via fsck on the target root
    rc, out, _ = run(capsys, target, "fsck", "vol")
    assert rc == 0


def test_unknown_volume_errors(tmp_path, capsys):
    rc, _out, err = run(capsys, str(tmp_path), "info", "ghost")
    assert rc == 2 and "error" in err


def test_stats_reports_headline_metrics(tmp_path, capsys):
    root = str(tmp_path)
    run(capsys, root, "create", "vol", "--size", "16M")
    rc, out, _ = run(capsys, root, "stats", "vol", "--exercise", "600")
    assert rc == 0
    # the full registry table...
    assert "store.client_bytes" in out
    assert "backend.put_latency_s" in out
    # ...and the paper's headline figures, all registry-derived
    assert "write amplification:  0." in out or "write amplification:  1." in out
    assert "read cache hit rate:  0." in out
    gc_line = next(
        line for line in out.splitlines() if line.startswith("gc bytes relocated:")
    )
    assert "0.00 MiB" not in gc_line
    assert "backend put p99:" in out and "0.000 ms" not in out


def test_stats_alternate_formats(tmp_path, capsys):
    import json

    root = str(tmp_path)
    run(capsys, root, "create", "vol", "--size", "16M")
    rc, out, _ = run(capsys, root, "stats", "vol", "--format", "prometheus")
    assert rc == 0 and "# TYPE volume_writes counter" in out
    rc, out, _ = run(capsys, root, "stats", "vol", "--format", "csv")
    assert rc == 0 and out.startswith("metric,value")
    out_file = tmp_path / "m.json"
    rc, out, _ = run(
        capsys, root, "stats", "vol", "--format", "json", "--out", str(out_file)
    )
    assert rc == 0 and "wrote" in out
    doc = json.loads(out_file.read_text())
    assert doc["volume"] == "vol" and "metrics" in doc


def test_trace_dumps_typed_jsonl(tmp_path, capsys):
    import json

    from repro.obs import EVENT_TYPES

    root = str(tmp_path)
    run(capsys, root, "create", "vol", "--size", "16M")
    rc, out, _ = run(capsys, root, "trace", "vol", "--exercise", "200")
    assert rc == 0
    events = [json.loads(line) for line in out.splitlines()]
    assert events
    assert {e["type"] for e in events} <= EVENT_TYPES
    assert all("ts" in e for e in events)
    # filtered + limited dump (600 ops seal several objects)
    rc, out, _ = run(
        capsys, root, "trace", "vol", "--exercise", "600",
        "--type", "backend_put", "--limit", "2",
    )
    filtered = [json.loads(line) for line in out.splitlines()]
    assert len(filtered) == 2
    assert all(e["type"] == "backend_put" for e in filtered)


def test_trace_runs_are_deterministic(tmp_path, capsys):
    """Identical volumes + identical exercises -> byte-identical traces."""
    outputs = []
    for sub in ("a", "b"):
        root = str(tmp_path / sub)
        run(capsys, root, "create", "vol", "--size", "16M")
        _, out, _ = run(capsys, root, "trace", "vol", "--exercise", "150")
        outputs.append(out)
    assert outputs[0] == outputs[1]
    assert outputs[0]


def test_stats_headline_fleet_and_sharedcache_sections():
    """The headline renders fleet QoS and shared-cache lines straight
    from a snapshot dict, so --from-dump works post-mortem."""
    from repro.cli import _stats_headline

    snapshot = {
        "sharedcache.hits": 30,
        "sharedcache.misses": 10,
        "sharedcache.bytes": 2 * (1 << 20),
        "sharedcache.evictions": 5,
        "fleet.acme.admitted": 100,
        "fleet.acme.throttled": 7,
        "fleet.acme.bytes_admitted": 1 << 20,
        "fleet.acme.queue_depth": 2,
        "fleet.bob.admitted": 3,
        "fleet.bob.throttled": 0,
    }
    out = _stats_headline(snapshot)
    assert "shared cache:         hit rate 0.750, 2.00 MiB cached, 5 evictions" in out
    assert "tenant acme:  admitted 100, throttled 7, 1.00 MiB, queue 2" in out
    assert "tenant bob:  admitted 3, throttled 0, 0.00 MiB, queue 0" in out


def test_stats_headline_omits_fleet_lines_without_fleet_metrics():
    from repro.cli import _stats_headline

    out = _stats_headline({"store.client_bytes": 1024})
    assert "tenant " not in out
    assert "shared cache:" not in out
    # pre-placement dumps carry no store.class_* keys -> no class section
    assert "gc per class:" not in out


def test_stats_headline_gc_per_class_section():
    """Per-class written/relocated/occupancy lines render straight from a
    snapshot dict (the --from-dump contract)."""
    from repro.cli import _stats_headline

    MiB = 1 << 20
    snapshot = {
        "store.class_hot.bytes": 8 * MiB,
        "store.class_hot.gc_bytes": 2 * MiB,
        "store.class_hot.live_bytes": 3 * MiB,
        "store.class_hot.data_bytes": 4 * MiB,
        "store.class_cold.bytes": 16 * MiB,
        "store.class_cold.gc_bytes": 0,
        "store.class_cold.live_bytes": 0,
        "store.class_cold.data_bytes": 0,
    }
    out = _stats_headline(snapshot)
    assert "gc per class:" in out
    assert "hot:      8.00 MiB written,    2.00 MiB relocated, occupancy 0.750" in out
    # zero total bytes (class never populated) degrades to n/a, not a crash
    assert "cold:    16.00 MiB written,    0.00 MiB relocated, occupancy n/a" in out
    # warm never appeared in the snapshot -> no line
    assert "warm" not in out


def test_stats_gc_per_class_live_and_from_dump(tmp_path, capsys):
    """The exercised stack emits the class section, and a json dump
    replayed through --from-dump renders the same class lines."""
    import json

    root = str(tmp_path)
    run(capsys, root, "create", "vol", "--size", "16M")
    rc, out, _ = run(capsys, root, "stats", "vol", "--exercise", "600")
    assert rc == 0
    assert "gc per class:" in out
    # the overwrite-heavy exercise classifies hot traffic and relocates
    # survivors, so at least the hot class shows nonzero written bytes
    hot_line = next(line for line in out.splitlines() if line.strip().startswith("hot:"))
    assert "0.00 MiB written" not in hot_line
    class_lines = [line for line in out.splitlines() if "MiB relocated" in line]

    out_file = tmp_path / "m.json"
    rc, _out, _ = run(
        capsys, root, "stats", "vol", "--exercise", "600",
        "--format", "json", "--out", str(out_file),
    )
    assert rc == 0
    assert "metrics" in json.loads(out_file.read_text())
    rc, out, _ = run(capsys, root, "stats", "--from-dump", str(out_file))
    assert rc == 0
    assert "gc per class:" in out
    dump_lines = [line for line in out.splitlines() if "MiB relocated" in line]
    assert len(dump_lines) == len(class_lines) >= 1


def test_fleet_create_status_delete(tmp_path, capsys):
    root = str(tmp_path / "bucket")
    rc, out, _ = run(
        capsys, root, "fleet", "create", "vd0",
        "--size", "32M", "--tenant", "acme",
        "--iops", "500", "--cache-budget", "4M",
    )
    assert rc == 0 and "created 'vd0'" in out and "acme" in out
    rc, out, _ = run(capsys, root, "fleet", "status")
    assert rc == 0
    assert "vd0" in out and "acme" in out and "500" in out
    # duplicate create maps FleetError to the standard error path
    rc, _out, err = run(capsys, root, "fleet", "create", "vd0")
    assert rc == 2 and "error" in err
    rc, out, _ = run(capsys, root, "fleet", "delete", "vd0")
    assert rc == 0 and "deleted 'vd0'" in out
    rc, out, _ = run(capsys, root, "fleet", "status")
    assert rc == 0 and "no vdisks registered" in out


def test_fleet_create_requires_name(tmp_path, capsys):
    rc, _out, err = run(capsys, str(tmp_path), "fleet", "create")
    assert rc == 2 and "requires a vdisk name" in err


def test_fleet_recover_sweep(tmp_path, capsys):
    root = str(tmp_path / "bucket")
    run(capsys, root, "fleet", "create", "vd0", "--size", "32M",
        "--tenant", "t0")
    run(capsys, root, "fleet", "create", "vd1", "--size", "32M",
        "--tenant", "t1")
    rc, out, _ = run(capsys, root, "fleet", "recover")
    assert rc == 0
    assert "recovered 2 vdisk(s)" in out
    assert "vd0" in out and "t1" in out
