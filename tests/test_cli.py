"""Tests for the volume-management CLI."""

import pytest

from repro.cli import main, parse_size


def run(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr()
    return rc, out.out, out.err


def test_parse_size():
    assert parse_size("512") == 512
    assert parse_size("4K") == 4096
    assert parse_size("64M") == 64 << 20
    assert parse_size("1G") == 1 << 30
    with pytest.raises(Exception):
        parse_size("abc")
    with pytest.raises(Exception):
        parse_size("-5")


def test_create_info_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "bucket")
    rc, out, _ = run(capsys, root, "create", "vol", "--size", "32M")
    assert rc == 0 and "created" in out
    rc, out, _ = run(capsys, root, "info", "vol")
    assert rc == 0
    assert "size:       33554432" in out


def test_create_twice_errors(tmp_path, capsys):
    root = str(tmp_path)
    run(capsys, root, "create", "vol")
    rc, _out, err = run(capsys, root, "create", "vol")
    assert rc == 2
    assert "error" in err


def test_import_export_roundtrip(tmp_path, capsys):
    root = str(tmp_path / "bucket")
    payload = bytes(range(256)) * 64  # 16 KiB
    src = tmp_path / "in.bin"
    src.write_bytes(payload)
    dst = tmp_path / "out.bin"
    run(capsys, root, "create", "vol", "--size", "16M")
    rc, out, _ = run(capsys, root, "import", "vol", str(src), "--offset", "4K")
    assert rc == 0
    rc, out, _ = run(
        capsys, root, "export", "vol", str(dst), "--offset", "4K", "--length", "16K"
    )
    assert rc == 0
    assert dst.read_bytes() == payload


def test_snapshot_and_clone(tmp_path, capsys):
    root = str(tmp_path)
    src = tmp_path / "data.bin"
    src.write_bytes(b"GOLD" * 1024)
    run(capsys, root, "create", "vol", "--size", "16M")
    run(capsys, root, "import", "vol", str(src))
    rc, out, _ = run(capsys, root, "snapshot", "vol", "v1")
    assert rc == 0 and "snapshot 'v1'" in out
    rc, out, _ = run(capsys, root, "clone", "vol", "dev", "--snapshot", "v1")
    assert rc == 0 and "cloned vol@v1 -> dev" in out
    exported = tmp_path / "clone.bin"
    rc, _out, _ = run(capsys, root, "export", "dev", str(exported), "--length", "4K")
    assert rc == 0
    assert exported.read_bytes() == b"GOLD" * 1024


def test_fsck_and_scrub_clean(tmp_path, capsys):
    root = str(tmp_path)
    run(capsys, root, "create", "vol")
    rc, out, _ = run(capsys, root, "fsck", "vol")
    assert rc == 0 and "no errors" in out
    rc, out, _ = run(capsys, root, "scrub", "vol")
    assert rc == 0 and "scrubbed" in out


def test_replicate_command(tmp_path, capsys):
    root = str(tmp_path / "a")
    target = str(tmp_path / "b")
    src = tmp_path / "data.bin"
    src.write_bytes(b"R" * 8192)
    run(capsys, root, "create", "vol", "--size", "16M")
    run(capsys, root, "import", "vol", str(src))
    rc, out, _ = run(capsys, root, "replicate", "vol", target)
    assert rc == 0 and "replicated" in out
    # the replica mounts via fsck on the target root
    rc, out, _ = run(capsys, target, "fsck", "vol")
    assert rc == 0


def test_unknown_volume_errors(tmp_path, capsys):
    rc, _out, err = run(capsys, str(tmp_path), "info", "ghost")
    assert rc == 2 and "error" in err
