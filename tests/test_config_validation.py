"""Configuration validation and defaults."""

import pytest

from repro.core.config import BLOCK, SECTOR, LSVDConfig


def test_defaults_match_paper_setup():
    cfg = LSVDConfig()
    assert cfg.batch_size == 8 << 20  # "e.g. 8 or 32 MB" (§3.2)
    assert cfg.gc_low_watermark == 0.70  # §3.5
    assert cfg.gc_high_watermark == 0.75  # §4.6
    assert cfg.write_cache_fraction == pytest.approx(0.2)  # §3.1
    assert SECTOR == 512 and BLOCK == 4096


def test_rejects_tiny_batch():
    with pytest.raises(ValueError):
        LSVDConfig(batch_size=1024)


def test_rejects_inverted_watermarks():
    with pytest.raises(ValueError):
        LSVDConfig(gc_low_watermark=0.8, gc_high_watermark=0.7)
    with pytest.raises(ValueError):
        LSVDConfig(gc_low_watermark=0.0)
    with pytest.raises(ValueError):
        LSVDConfig(gc_high_watermark=1.5)


def test_rejects_bad_cache_fraction():
    with pytest.raises(ValueError):
        LSVDConfig(write_cache_fraction=0.0)
    with pytest.raises(ValueError):
        LSVDConfig(write_cache_fraction=1.0)


def test_rejects_bad_checkpoint_interval():
    with pytest.raises(ValueError):
        LSVDConfig(checkpoint_interval=0)


def test_valid_custom_config():
    cfg = LSVDConfig(
        batch_size=32 << 20,
        gc_low_watermark=0.6,
        gc_high_watermark=0.8,
        defrag_hole_bytes=8192,
    )
    assert cfg.batch_size == 32 << 20
    assert cfg.defrag_hole_bytes == 8192
