"""Tests for write batching (merge/coalescing) and the object map."""

import pytest

from repro.core.batch import WriteBatch, seal_gc_batch
from repro.core.log import KIND_DATA, KIND_GC, decode_object
from repro.core.object_map import ObjectMap

UUID = b"\x01" * 16


# -- WriteBatch ---------------------------------------------------------------


def test_batch_accumulates_and_seals():
    b = WriteBatch(batch_size=8192)
    b.add(0, b"a" * 4096, record_seq=1)
    assert not b.should_seal()
    b.add(4096, b"b" * 4096, record_seq=2)
    assert b.should_seal()
    sealed = b.seal(seq=1, uuid=UUID)
    assert sealed.seq == 1
    assert sealed.bytes_in == 8192
    assert sealed.bytes_out == 8192
    assert sealed.last_record_seq == 2
    assert b.is_empty


def test_batch_coalesces_overwrites_within_batch():
    """§3.1: writes may be coalesced within a single batch."""
    b = WriteBatch(batch_size=1 << 20)
    b.add(0, b"old" + b"\x00" * 509, record_seq=1)
    b.add(0, b"new" + b"\x00" * 509, record_seq=2)
    sealed = b.seal(seq=1, uuid=UUID)
    assert sealed.bytes_in == 1024
    assert sealed.bytes_out == 512  # half eliminated
    assert sealed.merged_bytes == 512
    header, data = decode_object(sealed.payload)
    assert data[:3] == b"new"


def test_batch_partial_overlap_keeps_fragments():
    b = WriteBatch(batch_size=1 << 20)
    b.add(0, b"A" * 1024)
    b.add(512, b"B" * 1024)
    sealed = b.seal(seq=1, uuid=UUID)
    header, data = decode_object(sealed.payload)
    assert sealed.bytes_out == 1536
    # reconstruct the logical content
    image = bytearray(1536)
    off = 0
    for ext in header.extents:
        image[ext.lba : ext.lba + ext.length] = data[off : off + ext.length]
        off += ext.length
    assert bytes(image) == b"A" * 512 + b"B" * 1024


def test_batch_read_back_unsealed_data():
    b = WriteBatch(batch_size=1 << 20)
    b.add(1024, b"X" * 512)
    [(lba, length, data)] = b.read(1024, 512)
    assert (lba, length, data) == (1024, 512, b"X" * 512)
    assert b.read(0, 512) == []


def test_batch_empty_write_rejected():
    b = WriteBatch(batch_size=4096)
    with pytest.raises(ValueError):
        b.add(0, b"")


def test_batch_payload_decodes_with_correct_extents():
    b = WriteBatch(batch_size=1 << 20)
    b.add(8192, b"y" * 512, record_seq=9)
    sealed = b.seal(seq=4, uuid=UUID)
    header, data = decode_object(sealed.payload)
    assert header.kind == KIND_DATA
    assert header.seq == 4
    assert header.last_record_seq == 9
    assert [(e.lba, e.length) for e in header.extents] == [(8192, 512)]


def test_seal_gc_batch_records_sources():
    pieces = [(0, 512, 3, b"a" * 512), (4096, 512, 7, b"b" * 512)]
    sealed = seal_gc_batch(10, UUID, pieces, last_record_seq=0)
    header, data = decode_object(sealed.payload)
    assert header.kind == KIND_GC
    assert [e.src_seq for e in header.extents] == [3, 7]
    assert data == b"a" * 512 + b"b" * 512


# -- ObjectMap ----------------------------------------------------------------


def make_map():
    om = ObjectMap()
    om.add_object(1, KIND_DATA, data_bytes=1000, extents=[])
    om.add_object(2, KIND_DATA, data_bytes=1000, extents=[])
    return om


def test_object_map_accounting_on_overwrite():
    om = make_map()
    om.apply_extent(1, lba=0, length=1000, offset=0)
    assert om.objects[1].live_bytes == 1000
    om.apply_extent(2, lba=0, length=400, offset=0)
    assert om.objects[1].live_bytes == 600
    assert om.objects[2].live_bytes == 400


def test_object_map_utilization():
    om = make_map()
    om.apply_extent(1, 0, 1000, 0)
    om.apply_extent(2, 0, 500, 0)
    # object 1: 500/1000 live; object 2: 500/1000 live
    assert om.utilization() == pytest.approx(0.5)
    assert om.objects[1].utilization == pytest.approx(0.5)


def test_object_map_duplicate_seq_rejected():
    om = make_map()
    with pytest.raises(ValueError):
        om.add_object(1, KIND_DATA, 10, [])


def test_cleaning_candidates_sorted_by_utilization():
    om = make_map()
    om.add_object(3, KIND_DATA, data_bytes=1000, extents=[])
    om.apply_extent(1, 0, 1000, 0)
    om.apply_extent(2, 1000, 1000, 0)
    om.apply_extent(3, 0, 900, 0)  # object 1 drops to 100 live
    cands = om.cleaning_candidates()
    assert [c.seq for c in cands] == [1, 3, 2]


def test_cleaning_candidates_skip_base_and_excluded():
    om = make_map()
    om.objects[1].in_base = True
    om.apply_extent(1, 0, 100, 0)
    om.apply_extent(2, 1000, 100, 0)
    assert [c.seq for c in om.cleaning_candidates()] == [2]
    assert om.cleaning_candidates(exclude=[2]) == []


def test_gc_extent_applies_only_where_source_still_mapped():
    om = make_map()
    om.add_object(10, KIND_GC, data_bytes=1000, extents=[])
    om.apply_extent(1, 0, 1000, 0)
    om.apply_extent(2, 200, 100, 0)  # newer data in the middle
    moved = om.apply_gc_extent(10, 0, 1000, 0, src_seq=1)
    assert moved == 900  # the 100 bytes now owned by object 2 stay put
    assert om.objects[2].live_bytes == 100
    assert om.objects[1].live_bytes == 0
    assert om.objects[10].live_bytes == 900
    [mid] = om.lookup(200, 100)
    assert mid.target == 2


def test_trim_decrements_live():
    om = make_map()
    om.apply_extent(1, 0, 1000, 0)
    om.trim(0, 250)
    assert om.objects[1].live_bytes == 750
    assert om.lookup(0, 250) == []


def test_live_extents_of_reports_surviving_ranges():
    from repro.core.log import ObjectExtent

    om = ObjectMap()
    om.add_object(1, KIND_DATA, 1000, extents=[ObjectExtent(0, 1000, 0)])
    om.add_object(2, KIND_DATA, 100, extents=[ObjectExtent(300, 100, 0)])
    om.apply_extent(1, 0, 1000, 0)
    om.apply_extent(2, 300, 100, 0)
    live = om.live_extents_of(1)
    assert [(lba, length) for lba, length, _off in live] == [(0, 300), (400, 600)]
    # offsets locate the data inside object 1
    assert [off for _l, _n, off in live] == [0, 400]


def test_restore_roundtrip():
    om = make_map()
    om.apply_extent(1, 0, 600, 0)
    om.apply_extent(2, 600, 300, 0)
    om2 = ObjectMap.restore(om.entries(), om.object_table(), {})
    assert om2.entries() == om.entries()
    assert om2.object_table() == om.object_table()
    assert om2.utilization() == om.utilization()


def test_negative_live_bytes_is_fatal():
    om = make_map()
    om.apply_extent(1, 0, 100, 0)
    om.objects[1].live_bytes = 0  # corrupt the accounting
    with pytest.raises(AssertionError):
        om.apply_extent(2, 0, 100, 0)
