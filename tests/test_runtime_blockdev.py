"""Tests for the fio driver, including block-layer elevator merging."""


from repro.runtime.blockdev import _MergingQueue, drive_ops, run_fio
from repro.sim import Simulator
from repro.workloads import FioJob
from repro.workloads.base import FLUSH, READ, WRITE, IOOp


class InstantDevice:
    """Completes every op after a fixed latency; records what it saw."""

    def __init__(self, sim, latency=1e-4):
        self.sim = sim
        self.latency = latency
        self.seen = []

    def submit(self, op):
        self.seen.append(op)
        done = self.sim.event()

        def run():
            yield self.sim.timeout(self.latency)
            done.succeed()

        self.sim.process(run())
        return done


def test_merging_queue_coalesces_adjacent_writes():
    ops = iter(
        [
            IOOp(WRITE, 0, 4096),
            IOOp(WRITE, 4096, 4096),
            IOOp(WRITE, 8192, 4096),
            IOOp(WRITE, 1 << 20, 4096),  # not adjacent
        ]
    )
    q = _MergingQueue(ops, limit=64 * 1024)
    first = q.take()
    assert (first.offset, first.length) == (0, 12288)
    second = q.take()
    assert (second.offset, second.length) == (1 << 20, 4096)
    assert q.take() is None


def test_merging_queue_respects_limit():
    ops = iter([IOOp(WRITE, i * 4096, 4096) for i in range(100)])
    q = _MergingQueue(ops, limit=16384)
    sizes = []
    while True:
        op = q.take()
        if op is None:
            break
        sizes.append(op.length)
    assert all(s <= 16384 for s in sizes)
    assert sum(sizes) == 100 * 4096


def test_merging_queue_disabled_passthrough():
    ops = iter([IOOp(WRITE, 0, 4096), IOOp(WRITE, 4096, 4096)])
    q = _MergingQueue(ops, limit=0)
    assert q.take().length == 4096
    assert q.take().length == 4096


def test_merging_queue_never_merges_across_kinds_or_flush():
    ops = iter(
        [
            IOOp(WRITE, 0, 4096),
            IOOp(READ, 4096, 4096),
            IOOp(FLUSH),
            IOOp(WRITE, 8192, 4096),
        ]
    )
    q = _MergingQueue(ops, limit=1 << 20)
    kinds = []
    while True:
        op = q.take()
        if op is None:
            break
        kinds.append(op.kind)
    assert kinds == [WRITE, READ, FLUSH, WRITE]


def test_run_fio_counts_merged_ops_individually():
    """A merged 512K request still counts as 128 x 4K client ops."""
    sim = Simulator()
    dev = InstantDevice(sim)
    job = FioJob(rw="write", bs=4096, iodepth=4, size=1 << 20, seed=0)
    result = run_fio(sim, dev, job, duration=0.5)
    assert result.ops > 0
    # the device saw merged (large) requests
    assert any(op.length > 4096 for op in dev.seen)
    # and client bytes add up to ops * bs
    assert result.bytes == result.ops * 4096


def test_run_fio_random_not_merged():
    sim = Simulator()
    dev = InstantDevice(sim)
    job = FioJob(rw="randwrite", bs=4096, iodepth=4, size=1 << 30, seed=0)
    run_fio(sim, dev, job, duration=0.2)
    merged = [op for op in dev.seen if op.length > 4096]
    assert len(merged) < len(dev.seen) * 0.05


def test_drive_ops_finite_stream_completes():
    sim = Simulator()
    dev = InstantDevice(sim)
    ops = [IOOp(WRITE, i * 4096, 4096) for i in range(10)] + [IOOp(FLUSH)]
    result = drive_ops(sim, dev, iter(ops), iodepth=2)
    assert result.ops == 10
    assert result.flushes == 1
    assert result.duration > 0
