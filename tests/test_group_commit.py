"""Pipeline regression tests: group commit, per-shard destage, recovery.

The group-commit contract (LSVD014, §3.2): K concurrent commit barriers
are settled by at most ceil(K / group) device FLUSH events, and every
caller's settlement happens-after the covering FLUSH — asserted here on
the simulator's virtual clock, not wall time.
"""

import math

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import ClientMachine, LSVDRuntime, SimulatedObjectStore
from repro.runtime.params import LSVDParams
from repro.runtime.sharded import make_sharded_backend
from repro.sim import Simulator
from repro.workloads.base import FLUSH, WRITE, IOOp

GiB = 1 << 30
MiB = 1 << 20


def ssd_cluster(sim, servers=4, per=8):
    return StorageCluster(
        sim, servers, per, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )


def lsvd_world(params=None, n_shards=0, cache=4 * GiB, volume=1 * GiB):
    sim = Simulator()
    machine = ClientMachine(sim)
    if n_shards:
        backend = make_sharded_backend(
            sim, machine.network, ssd_cluster, n_shards
        )
    else:
        backend = SimulatedObjectStore(sim, ssd_cluster(sim), machine.network)
    dev = LSVDRuntime(
        sim, machine, backend, volume, cache, LSVDConfig(),
        params=params, name="vd",
    )
    return sim, machine, backend, dev


def barrier_groups(dev):
    """[(ts, size)] of every settled barrier group, in order."""
    return [
        (e.ts, dict(e.fields)["size"])
        for e in dev.obs.trace.events("barrier_group")
    ]


# ---------------------------------------------------------------------------
# group commit
# ---------------------------------------------------------------------------


def test_concurrent_flushes_coalesce_into_one_device_flush():
    sim, m, backend, dev = lsvd_world()
    K = 12
    events = [dev.submit(IOOp(FLUSH)) for _ in range(K)]
    sim.run()
    assert all(ev.processed for ev in events)
    # all K barriers were queued before the commit worker woke: one group
    assert m.ssd.stats.flushes == 1
    assert barrier_groups(dev) == [(sim_ts, K) for sim_ts, _k in barrier_groups(dev)]
    assert dev.barrier_requests == K
    assert dev.barrier_flushes == 1
    assert dev.obs.histogram("barrier.group_size").percentile(100) == K


def test_every_settlement_happens_after_its_covering_flush():
    sim, m, backend, dev = lsvd_world()
    K = 9
    submit_times = [0.0, 0.0, 0.0, 1e-5, 1e-5, 2e-5, 3e-5, 3e-5, 3e-5]
    records = []

    def driver():
        for when in submit_times:
            if when > sim.now:
                yield sim.timeout(when - sim.now)
            rec = {"submitted": sim.now, "settled": None}
            records.append(rec)
            ev = dev.submit(IOOp(FLUSH))
            ev.add_callback(lambda _e, rec=rec: rec.__setitem__("settled", sim.now))

    sim.process(driver())
    sim.run()
    groups = barrier_groups(dev)
    # coalescing happened: fewer device FLUSHes than callers, and the
    # satellite bound holds for the observed grouping
    assert m.ssd.stats.flushes == len(groups) < K
    assert sum(size for _ts, size in groups) == K
    min_group = min(size for _ts, size in groups)
    assert m.ssd.stats.flushes <= math.ceil(K / min_group)
    # happens-after on the virtual clock: walking callers in settlement
    # order, each block of group-size settlements lands exactly at (and
    # never before) the timestamp its covering FLUSH completed
    settled = sorted(records, key=lambda r: r["settled"])
    cursor = 0
    for ts, size in groups:
        for rec in settled[cursor : cursor + size]:
            assert rec["settled"] >= ts
            assert rec["submitted"] <= ts
        cursor += size
    assert cursor == K


def test_serial_baseline_pays_one_flush_per_barrier():
    params = LSVDParams(group_commit=False)
    sim, m, backend, dev = lsvd_world(params=params)
    K = 6
    events = [dev.submit(IOOp(FLUSH)) for _ in range(K)]
    sim.run()
    assert all(ev.processed for ev in events)
    assert m.ssd.stats.flushes == K
    assert dev.barrier_flushes == K
    assert all(size == 1 for _ts, size in barrier_groups(dev))


def test_barrier_seals_partial_batch_through_public_api():
    sim, m, backend, dev = lsvd_world()
    done = dev.submit(IOOp(WRITE, 0, 64 * 1024))
    sim.run_until_event(done)
    assert any(dev.pagemap._batches.values())  # partial batch is accumulating
    flush = dev.submit(IOOp(FLUSH))
    sim.run_until_event(flush)
    # sealed by the barrier, not stranded
    assert not any(dev.pagemap._batches.values())
    sim.run(until=sim.now + 5.0)
    assert dev.objects_put >= 1  # ... and destaged to the backend


def test_writes_are_not_gated_behind_group_commit():
    # a write admitted while a barrier is in flight completes without
    # waiting for the FLUSH (group commit never gates writers)
    sim, m, backend, dev = lsvd_world()
    flush = dev.submit(IOOp(FLUSH))
    write = dev.submit(IOOp(WRITE, 0, 4096))
    sim.run_until_event(write)
    write_t = sim.now
    sim.run_until_event(flush)
    assert sim.now >= write_t  # the barrier settled no earlier


# ---------------------------------------------------------------------------
# per-shard destage queues
# ---------------------------------------------------------------------------


def test_destage_routes_to_per_shard_queues():
    sim, m, backend, dev = lsvd_world(n_shards=4, volume=2 * GiB)
    assert len(dev._destage_qs) == 4

    def burst():
        for i in range(256):
            yield dev.submit(IOOp(WRITE, (i * 8 * MiB) % (2 * GiB), 1 * MiB))

    sim.process(burst())
    sim.run(until=20.0)
    sim.run()
    # every shard took PUT traffic through its own queue
    for i in range(4):
        assert dev.obs.value(f"shard.{i}.puts", 0) > 0
        assert dev.obs.value(f"destage.{i}.queue_depth", -1) == 0
    assert dev.destage_queue_depth == 0
    assert dev.objects_put > 0


def test_queue_depth_gauge_rises_and_drains():
    sim, m, backend, dev = lsvd_world()
    depths = []

    def burst():
        for i in range(64):
            yield dev.submit(IOOp(WRITE, i * 16 * MiB, 8 * MiB))
            depths.append(dev.destage_queue_depth)

    sim.process(burst())
    sim.run(until=30.0)
    sim.run()
    assert max(depths) > 0  # destage queued behind the slow backend
    assert dev.destage_queue_depth == 0  # ... and fully drained


# ---------------------------------------------------------------------------
# overlapped recovery
# ---------------------------------------------------------------------------


def _recovered_world(overlap):
    sim, m, backend, dev = lsvd_world(n_shards=4, volume=2 * GiB)

    def burst():
        for i in range(128):
            yield dev.submit(IOOp(WRITE, i * 16 * MiB, 8 * MiB))
        yield dev.submit(IOOp(FLUSH))

    sim.process(burst())
    sim.run(until=30.0)
    sim.run()  # drain destage so the backend holds the objects
    assert backend.puts > 4
    scan = dev.recovery_scan(max_headers=8, overlap=overlap)
    result = sim.run_until_event(scan)
    return result


def test_recovery_scan_finds_the_durable_objects():
    result = _recovered_world(overlap=True)
    assert result["objects"] > 4
    assert result["headers"] == 8
    assert result["duration"] > 0


def test_overlapped_recovery_beats_sequential():
    fanned = _recovered_world(overlap=True)
    serial = _recovered_world(overlap=False)
    assert fanned["objects"] == serial["objects"]
    # the scatter-gather fan costs ~max over shards, the sequential walk
    # ~sum over shards — the whole point of overlapping the sweep
    assert fanned["duration"] < serial["duration"]
