"""Tests for daemon (background) events in the simulation engine."""


from repro.sim import Simulator


def test_run_stops_when_only_daemons_remain():
    sim = Simulator()
    ticks = []

    def daemon():
        while True:
            yield sim.timeout(1.0, background=True)
            ticks.append(sim.now)

    def client():
        yield sim.timeout(3.5)

    sim.process(daemon())
    proc = sim.process(client())
    sim.run()  # must terminate despite the endless daemon
    assert proc.processed
    assert sim.now >= 3.5
    assert len(ticks) <= 4


def test_daemon_work_spawned_during_foreground_is_processed():
    sim = Simulator()
    log = []

    def daemon():
        while True:
            yield sim.timeout(1.0, background=True)
            log.append(("daemon", sim.now))

    def client():
        yield sim.timeout(2.5)
        log.append(("client", sim.now))

    sim.process(daemon())
    sim.process(client())
    sim.run()
    # daemon ticks at 1.0 and 2.0 ran while the client was pending
    assert ("daemon", 1.0) in log
    assert ("daemon", 2.0) in log
    assert ("client", 2.5) in log


def test_run_until_advances_through_daemons():
    sim = Simulator()
    ticks = []

    def daemon():
        while True:
            yield sim.timeout(1.0, background=True)
            ticks.append(sim.now)

    sim.process(daemon())
    sim.run(until=5.5)  # bounded runs ignore the foreground distinction
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_pure_daemon_simulation_run_is_noop():
    sim = Simulator()

    def daemon():
        while True:
            yield sim.timeout(1.0, background=True)

    sim.process(daemon())
    sim.run()
    # the daemon's boot event fires at t=0; nothing foreground after that
    assert sim.now == 0.0


def test_foreground_default_unchanged():
    sim = Simulator()
    done = []

    def client():
        yield sim.timeout(1.0)
        done.append(sim.now)

    sim.process(client())
    sim.run()
    assert done == [1.0]
