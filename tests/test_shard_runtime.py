"""Timed runtime over a sharded backend: throughput scales with shards.

Each shard endpoint owns an independent backend cluster; with a small
write cache the client is back-pressured to the destage drain rate, so
aggregate PUT throughput is bounded by the clusters — and grows as the
stream stripes over more of them.
"""

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.hdd import HDD, HDDSpec
from repro.runtime import (
    ClientMachine,
    LSVDRuntime,
    ShardedSimulatedBackend,
    make_sharded_backend,
)
from repro.runtime.blockdev import run_fio
from repro.runtime.params import LSVDParams
from repro.sim import Simulator
from repro.workloads.fio import FioJob

MiB = 1 << 20
GiB = 1 << 30


#: deliberately slow media so a single shard's cluster — not the client
#: NIC or cache SSD — is the bottleneck the experiment scales past
SLOW_DISK = HDDSpec(transfer_rate=15e6)


def slow_cluster(sim: Simulator) -> StorageCluster:
    """One server of six slow HDDs: exactly one EC(4+2) stripe wide, so a
    single shard's PUT bandwidth is genuinely limited."""
    return StorageCluster(sim, 1, 6, lambda s, n: HDD(s, SLOW_DISK, name=n))


def run_sharded(n_shards: int, duration: float = 2.0):
    sim = Simulator()
    machine = ClientMachine(sim)
    backend = make_sharded_backend(sim, machine.network, slow_cluster, n_shards)
    params = LSVDParams(destage_workers=max(8, 2 * n_shards))
    device = LSVDRuntime(
        sim,
        machine,
        backend,
        volume_size=1 * GiB,
        cache_size=64 * MiB,  # small: back-pressure to the destage rate
        config=LSVDConfig(batch_size=4 * MiB),
        params=params,
        gc_enabled=False,
        name="vd",
    )
    job = FioJob(rw="write", bs=64 * 1024, iodepth=16, size=1 * GiB)
    result = run_fio(sim, device, job, duration=duration)
    return result, backend, backend.obs


def test_backend_put_throughput_scales_with_shards():
    """Acceptance: aggregate PUT throughput rises monotonically 1->4."""
    throughput = {}
    for n_shards in (1, 2, 4):
        _result, _backend, obs = run_sharded(n_shards)
        throughput[n_shards] = obs.value("backend.bytes_put")
    assert throughput[2] > throughput[1] * 1.3, throughput
    assert throughput[4] > throughput[2] * 1.2, throughput


def test_round_robin_spreads_puts_evenly_across_shards():
    _result, backend, obs = run_sharded(4, duration=1.0)
    per_shard = [obs.value(f"shard.{i}.puts") for i in range(4)]
    assert sum(per_shard) == obs.value("shard.puts") > 0
    # round-robin on a sequential stream: near-perfect balance
    assert max(per_shard) - min(per_shard) <= 1
    assert obs.value("shard.put_imbalance") < 1.25


def test_single_shard_facade_matches_plain_backend():
    """n_shards=1 through the facade must behave like the unsharded
    stack — same simulated world, same op counts and bytes."""
    from repro.runtime import SimulatedObjectStore

    def run(make_backend):
        sim = Simulator()
        machine = ClientMachine(sim)
        backend = make_backend(sim, machine)
        device = LSVDRuntime(
            sim, machine, backend, 1 * GiB, 64 * MiB,
            LSVDConfig(batch_size=4 * MiB), gc_enabled=False, name="vd",
        )
        job = FioJob(rw="write", bs=64 * 1024, iodepth=16, size=1 * GiB)
        run_fio(sim, device, job, duration=1.0)
        return backend.obs.value("backend.puts"), backend.obs.value(
            "backend.bytes_put"
        )

    plain = run(
        lambda sim, m: SimulatedObjectStore(sim, slow_cluster(sim), m.network)
    )
    sharded = run(
        lambda sim, m: make_sharded_backend(sim, m.network, slow_cluster, 1)
    )
    assert sharded == plain


def test_sharded_backend_routes_gets_and_deletes():
    sim = Simulator()
    machine = ClientMachine(sim)
    backend = make_sharded_backend(sim, machine.network, slow_cluster, 3)
    assert isinstance(backend, ShardedSimulatedBackend)
    events = [
        backend.put("vd.00000001", 1 * MiB),
        backend.put("vd.00000002", 1 * MiB),
        backend.get_range("vd.00000001", 0, 4096),
        backend.delete("vd.00000002"),
    ]
    sim.run()
    assert all(e.triggered for e in events)
    assert backend.obs.value("shard.0.puts") == 1
    assert backend.obs.value("shard.1.puts") == 1
    assert backend.obs.value("shard.0.gets") == 1
    assert backend.obs.value("shard.1.deletes") == 1
    # both facade aggregates and the shared backend.* family agree
    assert backend.puts == 2
    assert backend.obs.value("backend.puts") == 2
