"""Additional device-model behaviours: mixed load, controller sharing."""


import pytest

from repro.devices.hdd import HDD, HDDSpec
from repro.devices.ssd import SSD, SSDSpec
from repro.sim import Simulator


def run_duration(sim, gen):
    proc = sim.process(gen)
    sim.run_until_event(proc)
    return sim.now


def test_ssd_reads_and_writes_overlap():
    """Independent read/write paths: a mixed stream finishes faster than
    the sum of its serialized halves."""
    spec = SSDSpec.nvme_p3700()
    n, size = 400, 64 * 1024

    def reader(sim, ssd):
        for i in range(n):
            yield ssd.read(i * size, size)

    def writer(sim, ssd):
        for i in range(n):
            yield ssd.write((n + i) * size, size)

    sim = Simulator()
    ssd = SSD(sim, spec)
    a = sim.process(reader(sim, ssd))
    b = sim.process(writer(sim, ssd))
    sim.run()
    mixed = sim.now

    sim2 = Simulator()
    ssd2 = SSD(sim2, spec)
    run_duration(sim2, reader(sim2, ssd2))
    t_reads = sim2.now
    sim3 = Simulator()
    ssd3 = SSD(sim3, spec)
    run_duration(sim3, writer(sim3, ssd3))
    t_writes = sim3.now
    assert mixed < (t_reads + t_writes) * 0.95


def test_ssd_controller_caps_combined_bandwidth():
    """Read + write streams together cannot exceed total_bw."""
    spec = SSDSpec.nvme_p3700()
    sim = Simulator()
    ssd = SSD(sim, spec)
    n, size = 300, 1 << 20  # 300 MiB each direction

    def reader():
        for i in range(n):
            yield ssd.read(i * size, size)

    def writer():
        for i in range(n):
            yield ssd.write((n + i) * size, size)

    sim.process(reader())
    sim.process(writer())
    sim.run()
    total_bytes = 2 * n * size
    achieved = total_bytes / sim.now
    assert achieved <= spec.total_bw * 1.05
    # and it does better than a single direction alone could
    assert achieved > spec.seq_write_bw * 1.2


def test_ssd_random_write_latency_penalty():
    """Random writes carry extra completion latency vs sequential ones."""
    spec = SSDSpec.nvme_p3700()
    sim = Simulator()
    ssd = SSD(sim, spec)

    def one(kind, offset):
        start = sim.now
        done = ssd.submit(kind, offset, 4096)
        yield done
        return sim.now - start

    seq1 = sim.run_until_event(sim.process(one("write", 0)))
    # second sequential write continues at the last end offset
    seq2 = sim.run_until_event(sim.process(one("write", 4096)))
    rand = sim.run_until_event(sim.process(one("write", 1 << 30)))
    assert rand > seq2
    assert rand - seq2 == pytest.approx(spec.rand_write_latency, rel=0.5)


def test_hdd_flush_is_cheap_on_sas():
    spec = HDDSpec.sas_10k()
    sim = Simulator()
    hdd = HDD(sim, spec)
    sim.run_until_event(hdd.flush())
    assert sim.now <= 0.5e-3


def test_ssd_write_size_histogram_buckets_power_of_two():
    sim = Simulator()
    ssd = SSD(sim)
    for size in (4096, 5000, 16384, 1 << 20):
        sim.run_until_event(ssd.write(0, size))
    buckets = ssd.stats.write_size_bytes
    assert 4096 in buckets
    assert (1 << 20) in buckets
    assert sum(buckets.values()) == 4096 + 5000 + 16384 + (1 << 20)
