"""Tests for TRIM/discard and vectored writes."""

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import LSVDError
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def make_volume():
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=8)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, DiskImage(2 * MiB), cfg)
    return store, vol


def test_trim_reads_back_zero():
    _store, vol = make_volume()
    vol.write(0, b"x" * 8192)
    vol.trim(0, 4096)
    assert vol.read(0, 4096) == b"\x00" * 4096
    assert vol.read(4096, 4096) == b"x" * 4096


def test_trim_after_destage_reads_zero():
    _store, vol = make_volume()
    vol.write(0, b"y" * 8192)
    vol.drain()
    vol.trim(4096, 4096)
    assert vol.read(0, 4096) == b"y" * 4096
    assert vol.read(4096, 4096) == b"\x00" * 4096


def test_trim_creates_garbage_for_gc():
    _store, vol = make_volume()
    for i in range(64):
        vol.write(i * 4096, bytes([i + 1]) * 4096)
    vol.drain()
    live_before, total = vol.occupancy()
    vol.trim(0, 32 * 4096)
    live_after, _total = vol.occupancy()
    assert live_after == live_before - 32 * 4096


def test_trim_alignment_and_bounds():
    _store, vol = make_volume()
    with pytest.raises(ValueError):
        vol.trim(100, 512)
    with pytest.raises(ValueError):
        vol.trim(vol.size - 512, 1024)


def test_trim_on_read_only_volume_rejected():
    store, vol = make_volume()
    vol.write(0, b"s" * 4096)
    vol.snapshot("s")
    snap = LSVDVolume.open_snapshot(
        store, "vd", "s", DiskImage(2 * MiB), vol.config
    )
    with pytest.raises(LSVDError):
        snap.trim(0, 4096)


def test_writev_single_record_multiple_extents():
    _store, vol = make_volume()
    records_before = vol.wc.next_seq
    vol.writev([(0, b"a" * 4096), (1 * MiB, b"b" * 4096), (2 * MiB, b"c" * 512)])
    assert vol.wc.next_seq == records_before + 1  # one record for all three
    assert vol.read(0, 4096) == b"a" * 4096
    assert vol.read(1 * MiB, 4096) == b"b" * 4096
    assert vol.read(2 * MiB, 512) == b"c" * 512


def test_writev_survives_crash_recovery():
    import random

    store, vol = make_volume()
    image = vol.wc.image
    vol.writev([(0, b"1" * 4096), (8192, b"2" * 4096)])
    vol.flush()
    image.crash(rng=random.Random(1), survive_probability=1.0, allow_torn=False)
    vol2 = LSVDVolume.open(store, "vd", image, vol.config)
    assert vol2.read(0, 4096) == b"1" * 4096
    assert vol2.read(8192, 4096) == b"2" * 4096


def test_writev_empty_and_skip_empty_extents():
    _store, vol = make_volume()
    vol.writev([])
    vol.writev([(0, b""), (4096, b"z" * 512)])
    assert vol.read(4096, 512) == b"z" * 512


def test_writev_validates_every_extent():
    _store, vol = make_volume()
    with pytest.raises(ValueError):
        vol.writev([(0, b"ok" * 256), (100, b"bad" * 256)])
