"""Unit tests for the temperature-aware placement layer (core/placement.py).

The differential test (`test_placement_differential.py`) holds the two
engines to identical decisions; these tests pin down *what* those
decisions are: the SepBIT inference rules, survivor demotion, victim
ordering, and the relocation planner's chunk cuts.
"""

import pytest

from repro.core.config import LSVDConfig
from repro.core.placement import (
    NUM_TEMPS,
    TEMP_COLD,
    TEMP_HOT,
    TEMP_NAMES,
    TEMP_WARM,
    SepBitPolicy,
    SingleClassPolicy,
    make_policy,
    plan_relocation,
    select_victims,
)

PAGE = 4096


# -- classifier rules ---------------------------------------------------------


def test_first_write_is_warm():
    p = SepBitPolicy()
    assert p.on_write(0, PAGE) == TEMP_WARM


def test_quick_overwrite_is_hot():
    p = SepBitPolicy()
    p.on_write(0, PAGE)
    # one intervening write, then the overwrite: lifetime PAGE equals the
    # running mean (only sample), and at-or-below the mean means hot
    assert p.on_write(0, PAGE) == TEMP_HOT


def test_long_lived_overwrite_is_cold():
    p = SepBitPolicy()
    p.on_write(0, PAGE)
    p.on_write(PAGE, PAGE)
    p.on_write(PAGE, PAGE)  # short lifetime drags the mean down
    for i in range(2, 12):
        p.on_write(i * PAGE, PAGE)  # advance the clock with first writes
    # page 0 lived ~12 pages of clock against a mean of ~1 page: cold
    assert p.on_write(0, PAGE) == TEMP_COLD


def test_mean_threshold_is_exact_at_the_boundary():
    # two pages written back to back, each overwritten after the same
    # lifetime: both lifetimes equal the running mean exactly, and the
    # at-or-below rule must classify both hot (integer compare, no float
    # rounding at the knee)
    p = SepBitPolicy()
    p.on_write(0, PAGE)
    p.on_write(PAGE, PAGE)
    assert p.on_write(0, PAGE) == TEMP_HOT
    assert p.on_write(PAGE, PAGE) == TEMP_HOT


def test_multipage_write_classified_by_first_page():
    p = SepBitPolicy()
    p.on_write(0, PAGE)
    # the 3-page overwrite starts at a known-hot page; every covered page
    # inherits that class
    assert p.on_write(0, 3 * PAGE) == TEMP_HOT
    assert p._page_temp[0] == p._page_temp[1] == p._page_temp[2] == TEMP_HOT


def test_survivor_demotion_steps_toward_cold_and_saturates():
    p = SepBitPolicy()
    p.on_write(0, PAGE)  # warm
    assert p.split_relocation(0, PAGE) == [(0, PAGE, TEMP_COLD)]
    # already cold: demotion saturates
    assert p.split_relocation(0, PAGE) == [(0, PAGE, TEMP_COLD)]


def test_split_relocation_is_partition_invariant():
    """Relocating a range in one piece or page by page must produce the
    same class assignment — the property the byte-granular stack and the
    page-granular simulator rely on to agree."""
    a, b = SepBitPolicy(), SepBitPolicy()
    for p in (a, b):
        p.on_write(0, PAGE)
        p.on_write(0, PAGE)  # page 0 hot
        p.on_write(PAGE, PAGE)  # page 1 warm
    whole = a.split_relocation(0, 2 * PAGE)
    paged = b.split_relocation(0, PAGE) + b.split_relocation(PAGE, PAGE)
    assert whole == [(0, PAGE, TEMP_WARM), (PAGE, PAGE, TEMP_COLD)]
    assert whole == paged
    assert a.reloc_bytes == b.reloc_bytes


def test_split_relocation_merges_same_class_neighbours():
    p = SepBitPolicy()
    p.on_write(0, 2 * PAGE)  # both pages warm
    assert p.split_relocation(0, 2 * PAGE) == [(0, 2 * PAGE, TEMP_COLD)]


def test_single_class_policy_uses_one_stream():
    p = SingleClassPolicy()
    assert p.num_temps == 1
    assert p.on_write(0, PAGE) == TEMP_HOT
    assert p.on_write(0, PAGE) == TEMP_HOT
    assert p.split_relocation(0, 3 * PAGE) == [(0, 3 * PAGE, TEMP_HOT)]


# -- construction and recording ----------------------------------------------


def test_make_policy_from_config_and_name():
    assert isinstance(make_policy(LSVDConfig()), SepBitPolicy)
    assert isinstance(make_policy(LSVDConfig(placement="legacy")), SingleClassPolicy)
    assert isinstance(make_policy("sepbit"), SepBitPolicy)
    assert isinstance(make_policy(None), SepBitPolicy)
    with pytest.raises(ValueError):
        make_policy("fifo")


def test_record_mode_traces_every_write_decision():
    p = make_policy("sepbit", record=True)
    assert p.on_write(0, PAGE) == TEMP_WARM
    assert p.on_write(0, PAGE) == TEMP_HOT
    assert p.trace == [TEMP_WARM, TEMP_HOT]
    assert p.write_bytes[TEMP_WARM] == PAGE
    assert p.write_bytes[TEMP_HOT] == PAGE
    assert make_policy("sepbit").trace is None


def test_class_constants_shape():
    assert (TEMP_HOT, TEMP_WARM, TEMP_COLD) == (0, 1, 2)
    assert NUM_TEMPS == 3
    assert len(TEMP_NAMES) == NUM_TEMPS


# -- victim selection ---------------------------------------------------------


def test_greedy_orders_by_utilisation_then_age():
    candidates = [(1, 50, 100), (2, 10, 100), (3, 10, 100), (4, 90, 100)]
    assert select_victims(
        candidates, policy="greedy", window=10, high_watermark=0.75
    ) == [2, 3, 1]  # seq 4 is above the watermark: never worth cleaning


def test_cost_benefit_prefers_old_sparse_objects():
    # same utilisation: the older object scores higher benefit
    candidates = [(1, 50, 100), (10, 50, 100)]
    assert select_victims(
        candidates, policy="cost_benefit", window=1, high_watermark=0.9
    ) == [1]
    # an old near-full object loses to a young near-empty one
    candidates = [(1, 90, 100), (9, 5, 100)]
    assert select_victims(
        candidates, policy="cost_benefit", window=1, high_watermark=0.9
    ) == [9]


def test_cost_benefit_score_is_offset_invariant():
    base = [(3, 30, 100), (5, 60, 100), (9, 10, 100)]
    shifted = [(seq + 1000, live, total) for seq, live, total in base]
    picked = select_victims(
        base, policy="cost_benefit", window=2, high_watermark=0.9
    )
    picked_shifted = select_victims(
        shifted, policy="cost_benefit", window=2, high_watermark=0.9
    )
    assert [seq + 1000 for seq in picked] == picked_shifted


def test_select_victims_respects_window_and_rejects_unknown_policy():
    candidates = [(i, 0, 100) for i in range(1, 6)]
    assert (
        len(select_victims(candidates, policy="greedy", window=2, high_watermark=0.9))
        == 2
    )
    with pytest.raises(ValueError):
        select_victims(candidates, policy="fifo", window=2, high_watermark=0.9)


# -- relocation planning ------------------------------------------------------


def test_plan_relocation_cuts_chunks_per_class_at_batch_size():
    p = SepBitPolicy()
    for i in range(4):
        p.on_write(i * PAGE, PAGE)  # all warm -> demote to cold on reloc
    pieces = [(i * PAGE, PAGE, 7, None) for i in range(4)]
    plans = list(plan_relocation(pieces, p, batch_bytes=2 * PAGE))
    # one class, cut every 2 pages: two full chunks
    assert [temp for temp, _chunk in plans] == [TEMP_COLD, TEMP_COLD]
    assert all(sum(ln for _l, ln, _s, _p in chunk) == 2 * PAGE for _t, chunk in plans)


def test_plan_relocation_flushes_partials_coldest_last():
    p = SepBitPolicy()
    p.on_write(0, PAGE)
    p.on_write(0, PAGE)  # page 0 hot -> demotes to warm
    p.on_write(PAGE, PAGE)  # page 1 warm -> demotes to cold
    pieces = [(0, PAGE, 7, None), (PAGE, PAGE, 7, None)]
    plans = list(plan_relocation(pieces, p, batch_bytes=1 << 20))
    assert [temp for temp, _chunk in plans] == [TEMP_WARM, TEMP_COLD]


def test_plan_relocation_slices_payloads_on_class_splits():
    p = SepBitPolicy()
    p.on_write(0, PAGE)
    p.on_write(0, PAGE)  # page 0 hot
    p.on_write(PAGE, PAGE)  # page 1 warm
    payload = bytes([1]) * PAGE + bytes([2]) * PAGE
    plans = dict(plan_relocation([(0, 2 * PAGE, 7, payload)], p, 1 << 20))
    assert plans[TEMP_WARM] == [(0, PAGE, 7, bytes([1]) * PAGE)]
    assert plans[TEMP_COLD] == [(PAGE, PAGE, 7, bytes([2]) * PAGE)]
