"""Unit tests for device timing models and the DiskImage content plane."""

import random

import pytest

from repro.devices import HDD, SSD, DiskImage, HDDSpec, NetworkLink, SSDSpec
from repro.sim import Simulator


def run_ops(sim, device, ops):
    """Submit ops back-to-back at full queue depth; return completion time."""

    def driver():
        events = [device.submit(kind, off, size) for kind, off, size in ops]
        for ev in events:
            yield ev

    proc = sim.process(driver())
    sim.run_until_event(proc)
    return sim.now


# --------------------------------------------------------------------------
# SSD timing
# --------------------------------------------------------------------------


def test_ssd_random_write_iops_near_rated():
    sim = Simulator()
    ssd = SSD(sim, SSDSpec.nvme_p3700())
    rng = random.Random(1)
    n = 2000
    ops = [("write", rng.randrange(0, 2**30, 4096), 4096) for _ in range(n)]
    elapsed = run_ops(sim, ssd, ops)
    iops = n / elapsed
    # rated 90K random-write IOPS
    assert 60_000 < iops <= 95_000


def test_ssd_sequential_write_is_bandwidth_limited():
    sim = Simulator()
    ssd = SSD(sim, SSDSpec.nvme_p3700())
    n, size = 500, 128 * 1024
    ops = [("write", i * size, size) for i in range(n)]
    elapsed = run_ops(sim, ssd, ops)
    bw = n * size / elapsed
    assert bw == pytest.approx(1.9e9, rel=0.3)


def test_ssd_sequential_faster_than_random_small_writes():
    spec = SSDSpec.nvme_p3700()
    sim1 = Simulator()
    seq = SSD(sim1, spec)
    t_seq = run_ops(sim1, seq, [("write", i * 4096, 4096) for i in range(1000)])
    sim2 = Simulator()
    rnd = SSD(sim2, spec)
    rng = random.Random(2)
    t_rnd = run_ops(
        sim2, rnd, [("write", rng.randrange(0, 2**30, 4096), 4096) for _ in range(1000)]
    )
    assert t_seq < t_rnd


def test_ssd_read_faster_than_write():
    spec = SSDSpec.nvme_p3700()
    rng = random.Random(3)
    offs = [rng.randrange(0, 2**30, 4096) for _ in range(1000)]
    sim1 = Simulator()
    t_read = run_ops(sim1, SSD(sim1, spec), [("read", o, 4096) for o in offs])
    sim2 = Simulator()
    t_write = run_ops(sim2, SSD(sim2, spec), [("write", o, 4096) for o in offs])
    assert t_read < t_write


def test_ssd_flush_counts_and_costs():
    sim = Simulator()
    ssd = SSD(sim, SSDSpec.nvme_p3700())
    sim.run_until_event(ssd.flush())
    assert ssd.stats.flushes == 1
    assert sim.now >= ssd.spec.flush_time


def test_ssd_stats_accumulate():
    sim = Simulator()
    ssd = SSD(sim)
    run_ops(sim, ssd, [("write", 0, 4096), ("read", 0, 8192)])
    assert ssd.stats.writes == 1
    assert ssd.stats.reads == 1
    assert ssd.stats.written_bytes == 4096
    assert ssd.stats.read_bytes == 8192
    assert ssd.stats.total_ops == 2
    assert 4096 in ssd.stats.write_size_bytes


def test_ssd_utilization_between_zero_and_one():
    sim = Simulator()
    ssd = SSD(sim)
    run_ops(sim, ssd, [("write", i * 4096, 4096) for i in range(100)])
    assert 0.0 < ssd.utilization() <= 1.0


# --------------------------------------------------------------------------
# HDD timing
# --------------------------------------------------------------------------


def test_hdd_random_small_write_iops_in_rated_range():
    sim = Simulator()
    hdd = HDD(sim, HDDSpec.sas_10k())
    rng = random.Random(4)
    n = 500
    ops = [
        ("write", rng.randrange(0, hdd.spec.capacity - 4096, 4096), 4096)
        for _ in range(n)
    ]
    elapsed = run_ops(sim, hdd, ops)
    iops = n / elapsed
    # paper: ~370 rated write IOPS on the 10K RPM drives
    assert 150 < iops < 600


def test_hdd_sequential_stream_is_transfer_limited():
    sim = Simulator()
    hdd = HDD(sim, HDDSpec.sas_10k())
    n, size = 200, 1024 * 1024
    ops = [("write", i * size, size) for i in range(n)]
    elapsed = run_ops(sim, hdd, ops)
    bw = n * size / elapsed
    assert bw == pytest.approx(200e6, rel=0.2)


def test_hdd_seek_grows_with_distance():
    sim = Simulator()
    hdd = HDD(sim)
    assert hdd.seek_time(0) == 0.0
    short = hdd.seek_time(10**6)
    long = hdd.seek_time(hdd.spec.capacity)
    assert 0 < short < long <= hdd.spec.max_seek


def test_hdd_large_writes_much_cheaper_per_byte_than_small():
    """Core of the paper's Fig 12-14 argument: 1 MiB chunks vs 16 KiB."""
    spec = HDDSpec.sas_10k()
    rng = random.Random(5)
    offs = [rng.randrange(0, spec.capacity - 2**21, 4096) for _ in range(200)]
    sim1 = Simulator()
    t_small = run_ops(sim1, HDD(sim1, spec), [("write", o, 16 * 1024) for o in offs])
    sim2 = Simulator()
    t_big = run_ops(sim2, HDD(sim2, spec), [("write", o, 1024 * 1024) for o in offs])
    per_byte_small = t_small / (200 * 16 * 1024)
    per_byte_big = t_big / (200 * 1024 * 1024)
    assert per_byte_small > 10 * per_byte_big


# --------------------------------------------------------------------------
# Network link
# --------------------------------------------------------------------------


def test_network_bandwidth_limits_transfers():
    sim = Simulator()
    link = NetworkLink(sim, bandwidth=1000.0, latency=0.1)
    done = []

    def proc():
        yield link.send(5000)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [pytest.approx(5.1)]
    assert link.bytes_sent == 5000


def test_network_directions_independent():
    sim = Simulator()
    link = NetworkLink(sim, bandwidth=1000.0, latency=0.0)
    times = {}

    def proc(tag, fn):
        yield fn(1000)
        times[tag] = sim.now

    sim.process(proc("tx", link.send))
    sim.process(proc("rx", link.receive))
    sim.run()
    assert times["tx"] == pytest.approx(1.0)
    assert times["rx"] == pytest.approx(1.0)


# --------------------------------------------------------------------------
# DiskImage content plane
# --------------------------------------------------------------------------


def test_image_read_back_what_was_written():
    img = DiskImage(1 << 20)
    img.write(4096, b"hello world")
    assert img.read(4096, 11) == b"hello world"


def test_image_bounds_checked():
    img = DiskImage(4096)
    with pytest.raises(ValueError):
        img.write(4000, b"x" * 200)
    with pytest.raises(ValueError):
        img.read(-1, 10)


def test_image_flush_makes_writes_crash_proof():
    img = DiskImage(1 << 20)
    img.write(0, b"durable!")
    img.flush()
    img.write(0, b"volatile")
    img.crash(rng=random.Random(0), survive_probability=0.0, allow_torn=False)
    assert img.read(0, 8) == b"durable!"


def test_image_crash_keeps_subset_of_pending():
    img = DiskImage(1 << 20)
    for i in range(20):
        img.write(i * 4096, bytes([i + 1]) * 4096)
    img.crash(rng=random.Random(7), survive_probability=0.5, allow_torn=False)
    survived = sum(1 for i in range(20) if img.read(i * 4096, 1) != b"\x00")
    assert 0 < survived < 20


def test_image_crash_can_tear_final_write():
    for seed in range(40):
        img = DiskImage(1 << 16)
        img.write(0, b"A" * 4096)
        torn = img.crash(
            rng=random.Random(seed), survive_probability=1.0, allow_torn=True
        )
        if torn is not None:
            assert 0 < torn.kept_length < 4096
            data = img.read(0, 4096)
            assert data[: torn.kept_length] == b"A" * torn.kept_length
            assert data[torn.kept_length :] == b"\x00" * (4096 - torn.kept_length)
            break
    else:
        pytest.fail("no torn write observed over 40 seeds")


def test_image_lose_clears_everything():
    img = DiskImage(8192)
    img.write(0, b"data")
    img.flush()
    img.lose()
    assert img.read(0, 4) == b"\x00\x00\x00\x00"


def test_image_counters():
    img = DiskImage(1 << 16)
    img.write(0, b"abc")
    img.read(0, 3)
    img.flush()
    assert (img.writes, img.reads, img.flushes) == (1, 1, 1)
    assert img.bytes_written == 3
    assert img.bytes_read == 3
