"""Latency-distribution behaviour of the runtimes (sanity envelope)."""


from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import (
    BcacheRBDRuntime,
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
)
from repro.sim import Simulator
from repro.workloads.base import IOOp

GiB = 1 << 30


def lsvd():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    return sim, LSVDRuntime(sim, machine, backend, 1 * GiB, 4 * GiB, LSVDConfig())


def one(sim, dev, op):
    start = sim.now
    sim.run_until_event(dev.submit(op))
    return sim.now - start


def test_lsvd_write_latency_envelope():
    sim, dev = lsvd()
    lat = one(sim, dev, IOOp("write", 0, 4096))
    # cpu 15us + sequential log write ~6us + completion ~60us
    assert 50e-6 < lat < 200e-6


def test_lsvd_consecutive_writes_do_not_drift():
    sim, dev = lsvd()
    lats = [one(sim, dev, IOOp("write", i * 4096, 4096)) for i in range(50)]
    assert max(lats) < 3 * min(lats)


def test_rbd_write_latency_dominated_by_journal_flush():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    dev = RBDRuntime(sim, machine, cluster)
    lat = one(sim, dev, IOOp("write", 0, 16384))
    # the 1.5ms consumer-SSD journal flush dominates a replicated write
    assert lat > 1.5e-3
    assert lat < 6e-3


def test_fio_result_reports_latency_percentiles():
    """Per-op latencies feed a histogram: p50/p95/p99 and min/max exist
    and are ordered (Figure 7 reports tails, not just means)."""
    from repro.runtime.blockdev import run_fio
    from repro.workloads.fio import FioJob

    sim, dev = lsvd()
    job = FioJob(rw="randwrite", bs=4096, iodepth=8, size=64 << 20, seed=3)
    result = run_fio(sim, dev, job, duration=0.2)
    assert result.ops > 0
    assert result.latency.count == result.ops
    p50 = result.latency_percentile(50)
    p95 = result.latency_percentile(95)
    p99 = result.latency_percentile(99)
    assert 0 < result.latency.min <= p50 <= p95 <= p99 <= result.latency.max
    # percentiles bracket the mean; the mean matches the legacy sum view
    assert result.latency.min <= result.mean_latency <= result.latency.max
    assert result.mean_latency == result.latency_sum / result.ops


def test_fio_merged_ops_count_into_the_histogram():
    """A merged sequential request records one sample per client op."""
    from repro.runtime.blockdev import run_fio
    from repro.workloads.fio import FioJob

    sim, dev = lsvd()
    job = FioJob(rw="write", bs=4096, iodepth=1, size=64 << 20, seed=1)
    result = run_fio(sim, dev, job, duration=0.05)
    assert result.ops > 0
    assert result.latency.count == result.ops


def test_bcache_fsync_latency_far_above_lsvd():
    """§4.2.2 at op granularity: a write+fsync pair."""

    def fsync_pair(make):
        sim, dev = make()
        total = one(sim, dev, IOOp("write", 0, 4096))
        total += one(sim, dev, IOOp("flush"))
        return total

    def make_bcache():
        sim = Simulator()
        machine = ClientMachine(sim)
        cluster = StorageCluster(
            sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
        )
        rbd = RBDRuntime(sim, machine, cluster)
        return sim, BcacheRBDRuntime(sim, machine, rbd, cache_size=4 * GiB)

    lsvd_pair = fsync_pair(lsvd)
    bcache_pair = fsync_pair(make_bcache)
    assert bcache_pair > 2 * lsvd_pair
