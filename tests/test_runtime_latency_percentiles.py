"""Latency-distribution behaviour of the runtimes (sanity envelope)."""


from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import (
    BcacheRBDRuntime,
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
)
from repro.sim import Simulator
from repro.workloads.base import IOOp

GiB = 1 << 30


def lsvd():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    return sim, LSVDRuntime(sim, machine, backend, 1 * GiB, 4 * GiB, LSVDConfig())


def one(sim, dev, op):
    start = sim.now
    sim.run_until_event(dev.submit(op))
    return sim.now - start


def test_lsvd_write_latency_envelope():
    sim, dev = lsvd()
    lat = one(sim, dev, IOOp("write", 0, 4096))
    # cpu 15us + sequential log write ~6us + completion ~60us
    assert 50e-6 < lat < 200e-6


def test_lsvd_consecutive_writes_do_not_drift():
    sim, dev = lsvd()
    lats = [one(sim, dev, IOOp("write", i * 4096, 4096)) for i in range(50)]
    assert max(lats) < 3 * min(lats)


def test_rbd_write_latency_dominated_by_journal_flush():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    dev = RBDRuntime(sim, machine, cluster)
    lat = one(sim, dev, IOOp("write", 0, 16384))
    # the 1.5ms consumer-SSD journal flush dominates a replicated write
    assert lat > 1.5e-3
    assert lat < 6e-3


def test_bcache_fsync_latency_far_above_lsvd():
    """§4.2.2 at op granularity: a write+fsync pair."""

    def fsync_pair(make):
        sim, dev = make()
        total = one(sim, dev, IOOp("write", 0, 4096))
        total += one(sim, dev, IOOp("flush"))
        return total

    def make_bcache():
        sim = Simulator()
        machine = ClientMachine(sim)
        cluster = StorageCluster(
            sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
        )
        rbd = RBDRuntime(sim, machine, cluster)
        return sim, BcacheRBDRuntime(sim, machine, rbd, cache_size=4 * GiB)

    lsvd_pair = fsync_pair(lsvd)
    bcache_pair = fsync_pair(make_bcache)
    assert bcache_pair > 2 * lsvd_pair
