"""Tier-1 gate: the real tree must satisfy every LSVD invariant.

Any PR that reintroduces a violation (a stray ``store.put``, wall-clock
read in the simulator, swallowed recovery exception...) fails here with
the exact ``file:line code message`` diagnostics.
"""

import json
import pathlib

from repro.lint import LintConfig, run_lint
from repro.lint.cli import main as lint_main

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
#: every tree the analyzer gates: library code plus the benchmark and
#: example drivers (which exercise the same store/volume APIs)
LINTED = [SRC, REPO / "benchmarks", REPO / "examples"]


def test_source_tree_is_clean():
    config = LintConfig.from_pyproject(REPO / "pyproject.toml")
    diagnostics = run_lint(LINTED, config)
    assert diagnostics == [], "LSVD invariant violations:\n" + "\n".join(
        d.render() for d in diagnostics
    )


def test_cli_clean_run_exits_zero(capsys):
    assert lint_main([str(p) for p in LINTED]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_clean_document(capsys):
    assert lint_main([str(p) for p in LINTED] + ["--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["clean"] is True
    assert doc["summary"]["total"] == 0
    assert doc["diagnostics"] == []


def test_every_rule_actually_ran_against_the_tree():
    """Guard against a rule being silently disabled by configuration."""
    config = LintConfig.from_pyproject(REPO / "pyproject.toml")
    for code in (
        "LSVD001",
        "LSVD002",
        "LSVD003",
        "LSVD004",
        "LSVD005",
        "LSVD006",
        "LSVD007",
        "LSVD008",
        "LSVD009",
        "LSVD010",
        "LSVD011",
        "LSVD012",
        "LSVD013",
    ):
        assert config.code_enabled(code), f"{code} is disabled in pyproject.toml"
