"""Unit and property tests for the extent map."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extent_map import Extent, ExtentMap


def test_empty_map():
    m = ExtentMap()
    assert len(m) == 0
    assert m.lookup(0, 100) == []
    assert m.mapped_bytes() == 0
    assert m.bounds() == (0, 0)


def test_single_update_and_lookup():
    m = ExtentMap()
    assert m.update(100, 50, "a", 0) == []
    [ext] = m.lookup(100, 50)
    assert (ext.lba, ext.length, ext.target, ext.offset) == (100, 50, "a", 0)


def test_lookup_clips_to_query():
    m = ExtentMap()
    m.update(100, 100, "a", 0)
    [ext] = m.lookup(150, 10)
    assert (ext.lba, ext.length, ext.offset) == (150, 10, 50)


def test_lookup_before_and_after_misses():
    m = ExtentMap()
    m.update(100, 10, "a", 0)
    assert m.lookup(0, 100) == []
    assert m.lookup(110, 5) == []


def test_overwrite_middle_splits():
    m = ExtentMap()
    m.update(0, 100, "a", 0)
    displaced = m.update(40, 20, "b", 7)
    assert len(displaced) == 1
    assert (displaced[0].lba, displaced[0].length, displaced[0].target) == (40, 20, "a")
    exts = m.lookup(0, 100)
    assert [(e.lba, e.length, e.target, e.offset) for e in exts] == [
        (0, 40, "a", 0),
        (40, 20, "b", 7),
        (60, 40, "a", 60),
    ]


def test_overwrite_spanning_multiple():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "b", 0)
    m.update(20, 10, "c", 0)
    displaced = m.update(5, 20, "z", 0)
    assert {d.target for d in displaced} == {"a", "b", "c"}
    assert sum(d.length for d in displaced) == 20
    exts = m.lookup(0, 30)
    assert [(e.lba, e.length, e.target) for e in exts] == [
        (0, 5, "a"),
        (5, 20, "z"),
        (25, 5, "c"),
    ]


def test_exact_overwrite_displaces_all():
    m = ExtentMap()
    m.update(10, 10, "a", 0)
    displaced = m.update(10, 10, "b", 0)
    assert len(displaced) == 1 and displaced[0].target == "a"
    assert len(m) == 1


def test_coalesce_adjacent_same_target_contiguous_offset():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "a", 10)
    assert len(m) == 1
    [ext] = m.lookup(0, 20)
    assert (ext.lba, ext.length, ext.offset) == (0, 20, 0)


def test_no_coalesce_when_offsets_not_contiguous():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "a", 100)
    assert len(m) == 2


def test_no_coalesce_different_targets():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "b", 10)
    assert len(m) == 2


def test_coalesce_filling_gap_merges_three():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(20, 10, "a", 20)
    m.update(10, 10, "a", 10)
    assert len(m) == 1


def test_remove_punches_hole():
    m = ExtentMap()
    m.update(0, 30, "a", 0)
    removed = m.remove(10, 10)
    assert len(removed) == 1 and removed[0].length == 10
    assert [(e.lba, e.length) for e in m.lookup(0, 30)] == [(0, 10), (20, 10)]


def test_remove_unmapped_is_noop():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    assert m.remove(100, 10) == []
    assert len(m) == 1


def test_lookup_with_gaps_covers_range():
    m = ExtentMap()
    m.update(10, 10, "a", 0)
    m.update(30, 10, "b", 0)
    pieces = m.lookup_with_gaps(0, 50)
    assert [(s, l, e.target if e else None) for s, l, e in pieces] == [
        (0, 10, None),
        (10, 10, "a"),
        (20, 10, None),
        (30, 10, "b"),
        (40, 10, None),
    ]


def test_lookup_strictly_before_first_extent():
    """Regression: a query entirely below the first mapped extent.

    The flat-list ancestor clamped a -1 bisect result to index 0, which
    silently worked; the chunked layout handles the no-predecessor case
    explicitly (see ExtentMap._start_pos).  Both the miss and the
    partial-overlap-from-below shapes must behave.
    """
    m = ExtentMap()
    m.update(1000, 50, "a", 0)
    m.update(2000, 50, "b", 0)
    assert m.lookup(0, 500) == []
    assert m.remove(0, 500) == []
    # query starting strictly before the first extent but reaching into it
    [ext] = m.lookup(900, 150)
    assert (ext.lba, ext.length, ext.target) == (1000, 50, "a")
    # update landing entirely before the first extent displaces nothing
    assert m.update(0, 10, "z", 0) == []
    assert [e.lba for e in m] == [0, 1000, 2000]


def test_slice_requires_overlap():
    ext = Extent(0, 10, "a", 0)
    with pytest.raises(ValueError):
        ext.slice(20, 5)


def test_entries_roundtrip():
    m = ExtentMap()
    m.update(0, 10, 1, 0)
    m.update(20, 5, 2, 100)
    m2 = ExtentMap.from_entries(m.entries())
    assert m2.entries() == m.entries()


def test_from_entries_rejects_overlap():
    with pytest.raises(ValueError):
        ExtentMap.from_entries([(0, 10, 1, 0), (5, 10, 2, 0)])


def test_from_entries_coalesces_adjacent_same_target_runs():
    """An old checkpoint may contain mergeable neighbours; restore must
    fold them so the restored map matches what a live map would hold."""
    m = ExtentMap.from_entries(
        [
            (0, 10, "a", 0),
            (10, 10, "a", 10),  # contiguous with the previous: merges
            (20, 10, "a", 100),  # offset breaks contiguity: stays
            (30, 10, "b", 110),  # target changes: stays
            (50, 10, "b", 120),  # gap: stays
        ]
    )
    assert m.entries() == [
        (0, 20, "a", 0),
        (20, 10, "a", 100),
        (30, 10, "b", 110),
        (50, 10, "b", 120),
    ]
    assert m.mapped_bytes() == 50


def test_from_entries_restore_is_idempotent():
    m = ExtentMap()
    for i in range(500):
        m.update(i * 7, 5, i % 3, i * 100)
    once = ExtentMap.from_entries(m.entries())
    assert once.entries() == m.entries()
    twice = ExtentMap.from_entries(once.entries())
    assert twice.entries() == once.entries()
    assert twice.mapped_bytes() == m.mapped_bytes()


# ---------------------------------------------------------------------------
# multi-chunk behaviour: force the map past one leaf (chunk bound is 256)
# ---------------------------------------------------------------------------


def _chunk_invariants(m):
    """The structural invariants of the chunked layout."""
    assert len(m._chunks) == len(m._lbas) == len(m._firsts)
    total = 0
    prev_end = None
    for chunk, lbas, first in zip(m._chunks, m._lbas, m._firsts):
        assert chunk, "empty leaf chunks must be removed"
        assert len(chunk) <= 2 * m._CHUNK_TARGET
        assert first == chunk[0].lba
        assert lbas == [e.lba for e in chunk]
        for e in chunk:
            if prev_end is not None:
                assert e.lba >= prev_end
            prev_end = e.end
        total += len(chunk)
    assert total == len(m)
    assert m.mapped_bytes() == sum(e.length for e in m)


def test_multi_chunk_split_and_iteration_order():
    m = ExtentMap()
    n = 1000  # isolated extents: forces several leaf splits
    for i in range(n):
        m.update(i * 10, 5, i, 0)
    assert len(m) == n
    assert len(m._chunks) > 1
    assert [e.lba for e in m] == [i * 10 for i in range(n)]
    _chunk_invariants(m)


def test_multi_chunk_carve_spanning_chunks():
    m = ExtentMap()
    n = 1000
    for i in range(n):
        m.update(i * 10, 5, i, 0)
    # carve a range spanning many leaves in one call: [95, 4995) overlaps
    # the 490 extents with lba 100..4990
    displaced = m.remove(95, 4900)
    assert sum(d.length for d in displaced) == 5 * 490
    assert [e.lba for e in m.lookup(0, 200)] == [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]
    _chunk_invariants(m)


def test_multi_chunk_overwrite_everything_collapses_to_one():
    m = ExtentMap()
    for i in range(600):
        m.update(i * 10, 10, i, 0)
    assert len(m._chunks) > 1
    displaced = m.update(0, 6000, "big", 0)
    assert sum(d.length for d in displaced) == 6000
    assert len(m) == 1
    assert len(m._chunks) == 1
    _chunk_invariants(m)


def test_multi_chunk_fold_after_heavy_removal():
    m = ExtentMap()
    for i in range(1000):
        m.update(i * 10, 5, i, 0)
    chunks_before = len(m._chunks)
    # remove 7 of every 8 extents in scattered small carves; the shrunken
    # leaves must fold into their neighbours instead of lingering
    for i in range(1000):
        if i % 8 != 3:
            m.remove(i * 10, 10)
    _chunk_invariants(m)
    assert len(m) == 125
    assert len(m._chunks) < chunks_before


def test_multi_chunk_coalesce_across_chunk_boundary():
    """Sequential same-target writes must merge even when the neighbour
    sits in the previous leaf chunk."""
    m = ExtentMap()
    for i in range(2000):
        m.update(i * 10, 10, "seq", i * 10)
    assert len(m) == 1  # everything contiguous: one extent survives
    assert m.mapped_bytes() == 20000
    _chunk_invariants(m)


def test_zero_length_lookup_empty():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    assert m.lookup(0, 0) == []


def test_carve_rejects_nonpositive_length():
    m = ExtentMap()
    with pytest.raises(ValueError):
        m.remove(0, 0)


# ---------------------------------------------------------------------------
# property tests: the map must agree with a naive per-address model
# ---------------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["update", "remove"]),
        st.integers(min_value=0, max_value=200),  # lba
        st.integers(min_value=1, max_value=60),  # length
        st.integers(min_value=0, max_value=5),  # target id
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_map_matches_naive_model(ops):
    m = ExtentMap()
    model = {}  # addr -> (target, byte-within-target)
    for i, (op, lba, length, target) in enumerate(ops):
        if op == "update":
            offset = i * 1000  # distinct offsets per op
            m.update(lba, length, target, offset)
            for a in range(lba, lba + length):
                model[a] = (target, offset + (a - lba))
        else:
            m.remove(lba, length)
            for a in range(lba, lba + length):
                model.pop(a, None)
    # compare address by address
    for addr in range(0, 261):
        pieces = m.lookup(addr, 1)
        if addr in model:
            assert len(pieces) == 1
            ext = pieces[0]
            assert (ext.target, ext.offset) == model[addr]
        else:
            assert pieces == []


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_map_invariants_sorted_nonoverlapping(ops):
    m = ExtentMap()
    for i, (op, lba, length, target) in enumerate(ops):
        if op == "update":
            m.update(lba, length, target, i * 1000)
        else:
            m.remove(lba, length)
        exts = list(m)
        for a, b in zip(exts, exts[1:]):
            assert a.end <= b.lba, "extents must be sorted and disjoint"
        # coalescing invariant: no two mergeable neighbours remain
        for a, b in zip(exts, exts[1:]):
            mergeable = (
                a.end == b.lba
                and a.target == b.target
                and a.offset + a.length == b.offset
            )
            assert not mergeable, "adjacent extents should have been merged"


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_displaced_bytes_conserve_mapped_total(ops):
    m = ExtentMap()
    mapped = 0
    for i, (op, lba, length, target) in enumerate(ops):
        if op == "update":
            displaced = m.update(lba, length, target, i * 1000)
            mapped += length - sum(d.length for d in displaced)
        else:
            displaced = m.remove(lba, length)
            mapped -= sum(d.length for d in displaced)
        assert m.mapped_bytes() == mapped
