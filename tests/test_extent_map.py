"""Unit and property tests for the extent map."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extent_map import Extent, ExtentMap


def test_empty_map():
    m = ExtentMap()
    assert len(m) == 0
    assert m.lookup(0, 100) == []
    assert m.mapped_bytes() == 0
    assert m.bounds() == (0, 0)


def test_single_update_and_lookup():
    m = ExtentMap()
    assert m.update(100, 50, "a", 0) == []
    [ext] = m.lookup(100, 50)
    assert (ext.lba, ext.length, ext.target, ext.offset) == (100, 50, "a", 0)


def test_lookup_clips_to_query():
    m = ExtentMap()
    m.update(100, 100, "a", 0)
    [ext] = m.lookup(150, 10)
    assert (ext.lba, ext.length, ext.offset) == (150, 10, 50)


def test_lookup_before_and_after_misses():
    m = ExtentMap()
    m.update(100, 10, "a", 0)
    assert m.lookup(0, 100) == []
    assert m.lookup(110, 5) == []


def test_overwrite_middle_splits():
    m = ExtentMap()
    m.update(0, 100, "a", 0)
    displaced = m.update(40, 20, "b", 7)
    assert len(displaced) == 1
    assert (displaced[0].lba, displaced[0].length, displaced[0].target) == (40, 20, "a")
    exts = m.lookup(0, 100)
    assert [(e.lba, e.length, e.target, e.offset) for e in exts] == [
        (0, 40, "a", 0),
        (40, 20, "b", 7),
        (60, 40, "a", 60),
    ]


def test_overwrite_spanning_multiple():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "b", 0)
    m.update(20, 10, "c", 0)
    displaced = m.update(5, 20, "z", 0)
    assert {d.target for d in displaced} == {"a", "b", "c"}
    assert sum(d.length for d in displaced) == 20
    exts = m.lookup(0, 30)
    assert [(e.lba, e.length, e.target) for e in exts] == [
        (0, 5, "a"),
        (5, 20, "z"),
        (25, 5, "c"),
    ]


def test_exact_overwrite_displaces_all():
    m = ExtentMap()
    m.update(10, 10, "a", 0)
    displaced = m.update(10, 10, "b", 0)
    assert len(displaced) == 1 and displaced[0].target == "a"
    assert len(m) == 1


def test_coalesce_adjacent_same_target_contiguous_offset():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "a", 10)
    assert len(m) == 1
    [ext] = m.lookup(0, 20)
    assert (ext.lba, ext.length, ext.offset) == (0, 20, 0)


def test_no_coalesce_when_offsets_not_contiguous():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "a", 100)
    assert len(m) == 2


def test_no_coalesce_different_targets():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(10, 10, "b", 10)
    assert len(m) == 2


def test_coalesce_filling_gap_merges_three():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    m.update(20, 10, "a", 20)
    m.update(10, 10, "a", 10)
    assert len(m) == 1


def test_remove_punches_hole():
    m = ExtentMap()
    m.update(0, 30, "a", 0)
    removed = m.remove(10, 10)
    assert len(removed) == 1 and removed[0].length == 10
    assert [(e.lba, e.length) for e in m.lookup(0, 30)] == [(0, 10), (20, 10)]


def test_remove_unmapped_is_noop():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    assert m.remove(100, 10) == []
    assert len(m) == 1


def test_lookup_with_gaps_covers_range():
    m = ExtentMap()
    m.update(10, 10, "a", 0)
    m.update(30, 10, "b", 0)
    pieces = m.lookup_with_gaps(0, 50)
    assert [(s, l, e.target if e else None) for s, l, e in pieces] == [
        (0, 10, None),
        (10, 10, "a"),
        (20, 10, None),
        (30, 10, "b"),
        (40, 10, None),
    ]


def test_slice_requires_overlap():
    ext = Extent(0, 10, "a", 0)
    with pytest.raises(ValueError):
        ext.slice(20, 5)


def test_entries_roundtrip():
    m = ExtentMap()
    m.update(0, 10, 1, 0)
    m.update(20, 5, 2, 100)
    m2 = ExtentMap.from_entries(m.entries())
    assert m2.entries() == m.entries()


def test_from_entries_rejects_overlap():
    with pytest.raises(ValueError):
        ExtentMap.from_entries([(0, 10, 1, 0), (5, 10, 2, 0)])


def test_zero_length_lookup_empty():
    m = ExtentMap()
    m.update(0, 10, "a", 0)
    assert m.lookup(0, 0) == []


def test_carve_rejects_nonpositive_length():
    m = ExtentMap()
    with pytest.raises(ValueError):
        m.remove(0, 0)


# ---------------------------------------------------------------------------
# property tests: the map must agree with a naive per-address model
# ---------------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["update", "remove"]),
        st.integers(min_value=0, max_value=200),  # lba
        st.integers(min_value=1, max_value=60),  # length
        st.integers(min_value=0, max_value=5),  # target id
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_map_matches_naive_model(ops):
    m = ExtentMap()
    model = {}  # addr -> (target, byte-within-target)
    for i, (op, lba, length, target) in enumerate(ops):
        if op == "update":
            offset = i * 1000  # distinct offsets per op
            m.update(lba, length, target, offset)
            for a in range(lba, lba + length):
                model[a] = (target, offset + (a - lba))
        else:
            m.remove(lba, length)
            for a in range(lba, lba + length):
                model.pop(a, None)
    # compare address by address
    for addr in range(0, 261):
        pieces = m.lookup(addr, 1)
        if addr in model:
            assert len(pieces) == 1
            ext = pieces[0]
            assert (ext.target, ext.offset) == model[addr]
        else:
            assert pieces == []


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_map_invariants_sorted_nonoverlapping(ops):
    m = ExtentMap()
    for i, (op, lba, length, target) in enumerate(ops):
        if op == "update":
            m.update(lba, length, target, i * 1000)
        else:
            m.remove(lba, length)
        exts = list(m)
        for a, b in zip(exts, exts[1:]):
            assert a.end <= b.lba, "extents must be sorted and disjoint"
        # coalescing invariant: no two mergeable neighbours remain
        for a, b in zip(exts, exts[1:]):
            mergeable = (
                a.end == b.lba
                and a.target == b.target
                and a.offset + a.length == b.offset
            )
            assert not mergeable, "adjacent extents should have been merged"


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_displaced_bytes_conserve_mapped_total(ops):
    m = ExtentMap()
    mapped = 0
    for i, (op, lba, length, target) in enumerate(ops):
        if op == "update":
            displaced = m.update(lba, length, target, i * 1000)
            mapped += length - sum(d.length for d in displaced)
        else:
            displaced = m.remove(lba, length)
            mapped -= sum(d.length for d in displaced)
        assert m.mapped_bytes() == mapped
