"""Tests for cache-record and backend-object wire formats."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    decode_sections,
    encode_sections,
    pack_json,
    pack_rows,
    unpack_json,
    unpack_rows,
)
from repro.core.errors import CorruptRecordError
from repro.core.log import (
    KIND_DATA,
    KIND_GC,
    ObjectExtent,
    ObjectHeader,
    align_up,
    decode_object,
    decode_object_header,
    decode_record,
    encode_object,
    encode_record,
    object_name,
    pack_record,
    parse_object_name,
)

UUID = bytes(range(16))


def test_align_up():
    assert align_up(0) == 0
    assert align_up(1) == 4096
    assert align_up(4096) == 4096
    assert align_up(4097) == 8192
    assert align_up(5, 4) == 8


# -- cache records -----------------------------------------------------------


def test_record_roundtrip_single_write():
    rec = pack_record(7, [(4096, b"A" * 512)])
    buf = encode_record(rec)
    assert len(buf) % 4096 == 0
    out = decode_record(buf)
    assert out is not None
    assert out.seq == 7
    assert out.extents == [(4096, 512)]
    assert out.data[:512] == b"A" * 512


def test_record_roundtrip_multi_write():
    writes = [(0, b"a" * 4096), (8192, b"b" * 512), (100 * 4096, b"c" * 12288)]
    rec = pack_record(3, writes)
    out = decode_record(encode_record(rec))
    assert out.extents == [(0, 4096), (8192, 512), (409600, 12288)]
    for i, (lba, data) in enumerate(writes):
        off = out.data_offset_of(i)
        assert out.data[off : off + len(data)] == data


def test_record_small_write_expands_to_two_blocks():
    # paper §3.1: 4 KiB alignment can expand small writes by up to 100 %
    rec = pack_record(1, [(0, b"x" * 4096)])
    assert len(encode_record(rec)) == 8192  # 4K header + 4K data


def test_record_decode_rejects_bad_magic():
    buf = bytearray(encode_record(pack_record(1, [(0, b"x" * 512)])))
    buf[0] = ord("X")
    assert decode_record(bytes(buf)) is None


def test_record_decode_rejects_corrupt_data():
    buf = bytearray(encode_record(pack_record(1, [(0, b"x" * 512)])))
    buf[-1] ^= 0xFF
    assert decode_record(bytes(buf)) is None


def test_record_decode_rejects_truncation():
    buf = encode_record(pack_record(1, [(0, b"x" * 8192)]))
    assert decode_record(buf[: len(buf) - 4096]) is None


def test_record_decode_rejects_zeros():
    assert decode_record(b"\x00" * 8192) is None


def test_record_decode_at_offset():
    a = encode_record(pack_record(1, [(0, b"a" * 512)]))
    b = encode_record(pack_record(2, [(4096, b"b" * 512)]))
    buf = a + b
    out = decode_record(buf, offset=len(a))
    assert out.seq == 2


@settings(max_examples=50, deadline=None)
@given(
    seq=st.integers(min_value=0, max_value=2**63 - 1),
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**40),
            st.integers(min_value=1, max_value=3 * 4096),
        ),
        min_size=1,
        max_size=8,
    ),
)
def test_record_roundtrip_property(seq, writes):
    payload = [(lba, os.urandom(n)) for lba, n in writes]
    rec = pack_record(seq, payload)
    out = decode_record(encode_record(rec))
    assert out is not None and out.seq == seq
    for i, (lba, data) in enumerate(payload):
        assert out.extents[i] == (lba, len(data))
        off = out.data_offset_of(i)
        assert out.data[off : off + len(data)] == data


# -- backend objects ---------------------------------------------------------


def make_object(kind=KIND_DATA, seq=5, extents=None, data=b""):
    header = ObjectHeader(
        kind=kind, uuid=UUID, seq=seq, last_record_seq=42, extents=extents or []
    )
    header.data_len = len(data)
    return encode_object(header, data)


def test_object_roundtrip():
    data = b"0123456789" * 100
    exts = [ObjectExtent(0, 500, 0), ObjectExtent(10_000, 500, 0)]
    buf = make_object(extents=exts, data=data)
    header, out = decode_object(buf)
    assert header.kind == KIND_DATA
    assert header.seq == 5
    assert header.last_record_seq == 42
    assert header.uuid == UUID
    assert [(e.lba, e.length) for e in header.extents] == [(0, 500), (10_000, 500)]
    assert out == data


def test_object_header_only_parse():
    buf = make_object(extents=[ObjectExtent(4096, 4096, 0)], data=b"z" * 4096)
    header = decode_object_header(buf[:128])
    assert header.seq == 5
    assert header.data_len == 4096


def test_object_gc_extents_carry_source():
    buf = make_object(kind=KIND_GC, extents=[ObjectExtent(0, 100, src_seq=3)], data=b"x" * 100)
    header, _ = decode_object(buf)
    assert header.kind == KIND_GC
    assert header.extents[0].src_seq == 3


def test_object_crc_detects_flip():
    buf = bytearray(make_object(data=b"hello000"))
    buf[-2] ^= 1
    with pytest.raises(CorruptRecordError):
        decode_object(bytes(buf))


def test_object_rejects_bad_magic():
    buf = bytearray(make_object(data=b"hello000"))
    buf[0] = 0
    with pytest.raises(CorruptRecordError):
        decode_object_header(bytes(buf))


def test_object_rejects_truncated_data():
    buf = make_object(data=b"hello000")
    with pytest.raises(CorruptRecordError):
        decode_object(buf[:-4])


def test_object_data_offset_of():
    exts = [ObjectExtent(0, 100, 0), ObjectExtent(500, 200, 0)]
    header = ObjectHeader(kind=KIND_DATA, uuid=UUID, seq=1, last_record_seq=0, extents=exts)
    assert header.data_offset_of(1) - header.data_offset_of(0) == 100


def test_object_name_roundtrip():
    assert object_name("vol", 12) == "vol.00000012"
    assert parse_object_name("vol.00000012") == ("vol", 12)
    assert parse_object_name("my.vol.00000003") == ("my.vol", 3)
    with pytest.raises(ValueError):
        parse_object_name("vol.super")


# -- checkpoint codec --------------------------------------------------------


def test_sections_roundtrip():
    sections = {"a": b"hello", "b": b"", "json": pack_json({"x": 1})}
    out = decode_sections(encode_sections(sections))
    assert out["a"] == b"hello"
    assert out["b"] == b""
    assert unpack_json(out["json"]) == {"x": 1}


def test_sections_crc_detects_corruption():
    blob = bytearray(encode_sections({"a": b"hello"}))
    blob[-1] ^= 0xFF
    with pytest.raises(CorruptRecordError):
        decode_sections(bytes(blob))


def test_sections_reject_truncation():
    blob = encode_sections({"a": b"hello world"})
    with pytest.raises(CorruptRecordError):
        decode_sections(blob[:-3])


def test_sections_reject_garbage():
    with pytest.raises(CorruptRecordError):
        decode_sections(b"\x00" * 64)


def test_rows_roundtrip():
    rows = [(1, 2, 3), (4, 5, 6)]
    assert unpack_rows("<QQQ", pack_rows("<QQQ", rows)) == rows


def test_rows_reject_partial():
    blob = pack_rows("<QQ", [(1, 2)])
    with pytest.raises(CorruptRecordError):
        unpack_rows("<QQ", blob[:-1])
