"""Integration: Filebench models driven through the timed runtimes.

These lock in the qualitative Figure 8 relationships at small scale so a
regression in the barrier path or the workload models shows up in the
unit suite, not only in the (slower) benchmark harness.
"""

import itertools


from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import (
    BcacheRBDRuntime,
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
)
from repro.runtime.blockdev import drive_ops
from repro.sim import Simulator
from repro.workloads import oltp, varmail

GiB = 1 << 30


def lsvd_stack():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    dev = LSVDRuntime(sim, machine, backend, 2 * GiB, 8 * GiB, LSVDConfig(), name="vd")
    return sim, dev


def bcache_stack():
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    rbd = RBDRuntime(sim, machine, cluster)
    dev = BcacheRBDRuntime(sim, machine, rbd, cache_size=8 * GiB)
    return sim, dev


def throughput(stack_fn, model, duration=0.6):
    sim, dev = stack_fn()
    result = drive_ops(
        sim, dev, itertools.islice(model.ops(seed=7), 200_000), 16, duration
    )
    return (result.ops + result.flushes) / result.duration


def test_varmail_lsvd_wins_big():
    """§4.2.2: sync-heavy varmail is LSVD's biggest Filebench win."""
    lsvd = throughput(lsvd_stack, varmail(2 * GiB))
    bc = throughput(bcache_stack, varmail(2 * GiB))
    assert lsvd > bc * 1.5


def test_oltp_lsvd_wins_modestly():
    lsvd = throughput(lsvd_stack, oltp(2 * GiB))
    bc = throughput(bcache_stack, oltp(2 * GiB))
    assert lsvd > bc
    assert lsvd < bc * 2.5


def test_varmail_barrier_cost_is_the_differentiator():
    """Strip the barriers out of varmail and the gap shrinks: the win
    comes from commit-barrier handling, not the write path alone."""
    model = varmail(2 * GiB)

    def no_flush_ops(seed):
        return (op for op in model.ops(seed) if op.kind != "flush")

    sim, dev = lsvd_stack()
    lsvd_nf = drive_ops(sim, dev, itertools.islice(no_flush_ops(7), 200_000), 16, 0.6)
    sim, dev = bcache_stack()
    bc_nf = drive_ops(sim, dev, itertools.islice(no_flush_ops(7), 200_000), 16, 0.6)
    ratio_without_barriers = lsvd_nf.ops / max(bc_nf.ops, 1)

    lsvd = throughput(lsvd_stack, varmail(2 * GiB))
    bc = throughput(bcache_stack, varmail(2 * GiB))
    ratio_with_barriers = lsvd / bc
    assert ratio_with_barriers > ratio_without_barriers
