"""Tests for the repro.fleet control plane (§4.5 at host scale):
registry CRUD + manifest persistence, shared-cache partitioning, and the
post-crash recovery sweep with per-volume crash consistency."""

import json

import pytest

from repro.core import LSVDConfig
from repro.core.naming import stream_prefix
from repro.core.shared_cache import SharedObjectCache
from repro.crash import HistoryRecorder, PrefixChecker
from repro.fleet import (
    MANIFEST_KEY,
    FleetError,
    FleetManager,
    QoSLimits,
    VDiskRecord,
)
from repro.obs import Registry
from repro.objstore import InMemoryObjectStore, UnsettledObjectStore

MiB = 1 << 20


def small_config(**kw):
    defaults = dict(batch_size=64 * 1024, checkpoint_interval=1000)
    defaults.update(kw)
    return LSVDConfig(**defaults)


def make_fleet(store=None, **kw):
    store = store if store is not None else InMemoryObjectStore()
    return store, FleetManager(store, config=small_config(), **kw)


# -- registry CRUD + manifest --------------------------------------------------


def test_create_registers_and_persists_manifest():
    store, fleet = make_fleet()
    record = fleet.create("vd0", 4 * MiB, tenant="acme")
    assert record.name == "vd0" and record.tenant == "acme"
    assert store.exists(MANIFEST_KEY)
    doc = json.loads(store.get(MANIFEST_KEY).decode())
    assert [row["name"] for row in doc["vdisks"]] == ["vd0"]


def test_duplicate_create_and_unknown_lookups_raise():
    _, fleet = make_fleet()
    fleet.create("vd0", 4 * MiB, tenant="acme")
    with pytest.raises(FleetError):
        fleet.create("vd0", 4 * MiB, tenant="other")
    with pytest.raises(FleetError):
        fleet.record("nope")
    with pytest.raises(FleetError):
        fleet.attach("nope")
    with pytest.raises(FleetError):
        fleet.detach("vd0")  # registered but not attached


def test_attach_write_read_detach():
    _, fleet = make_fleet()
    fleet.create("vd0", 4 * MiB, tenant="acme")
    handle = fleet.attach("vd0")
    handle.volume.write(0, b"A" * 4096)
    assert handle.volume.read(0, 4096) == b"A" * 4096
    with pytest.raises(FleetError):
        fleet.attach("vd0")  # double attach
    handle.detach()
    assert fleet.attached("vd0") is None
    # reattach sees the data back (cache-lost mount, backend prefix)
    handle2 = fleet.attach("vd0")
    assert handle2.volume.read(0, 4096) == b"A" * 4096


def test_manifest_roundtrip_restores_limits_and_budgets():
    store, fleet = make_fleet()
    limits = QoSLimits(iops=500.0, bytes_per_s=8 * MiB, burst_ops=4)
    fleet.create("vd0", 4 * MiB, tenant="acme", limits=limits, cache_budget=2 * MiB)
    fleet.create("vd1", 8 * MiB, tenant="bob")
    # a second manager over the same store sees the whole registry
    fleet2 = FleetManager(store, config=small_config())
    names = [r.name for r in fleet2.vdisks()]
    assert names == ["vd0", "vd1"]
    r0 = fleet2.record("vd0")
    assert r0.limits == limits
    assert r0.cache_budget == 2 * MiB
    assert fleet2.record("vd1").limits.unlimited


def test_delete_refuses_attached_then_removes_stream():
    store, fleet = make_fleet()
    fleet.create("vd0", 4 * MiB, tenant="acme")
    handle = fleet.attach("vd0")
    handle.volume.write(0, b"A" * 4096)
    with pytest.raises(FleetError):
        fleet.delete("vd0")
    fleet.detach("vd0")
    assert fleet.delete("vd0") > 0
    assert store.list(stream_prefix("vd0")) == []
    assert fleet.vdisks() == []
    with pytest.raises(FleetError):
        fleet.delete("vd0")


def test_adopt_registers_existing_volume():
    store, fleet = make_fleet()
    fleet.create("vd0", 4 * MiB, tenant="acme")
    fleet2 = FleetManager(store, config=small_config())
    with pytest.raises(FleetError):
        fleet2.adopt(VDiskRecord(name="vd0", tenant="x", size=4 * MiB))
    record = VDiskRecord(name="vd9", tenant="acme", size=4 * MiB)
    assert fleet2.adopt(record) is record
    assert [r.name for r in fleet2.vdisks()] == ["vd0", "vd9"]


def test_manifest_key_cannot_collide_with_volume_streams():
    # "fleet.manifest" has a non-digit suffix, so even a volume named
    # "fleet" cannot mint it as a stream object
    store, fleet = make_fleet()
    fleet.create("fleet", 4 * MiB, tenant="acme")
    handle = fleet.attach("fleet")
    handle.volume.write(0, b"A" * 4096)
    fleet.close()
    assert MANIFEST_KEY in store.list(stream_prefix("fleet"))
    fleet2 = FleetManager(store, config=small_config())
    assert [r.name for r in fleet2.vdisks()] == ["fleet"]
    assert fleet2.attach("fleet").volume.read(0, 4096) == b"A" * 4096


# -- shared cache partitioning -------------------------------------------------


def test_attach_wires_shared_cache_and_detach_unwires():
    shared = SharedObjectCache(capacity=4 * MiB)
    _, fleet = make_fleet(shared_cache=shared)
    fleet.create("vd0", 4 * MiB, tenant="acme")
    handle = fleet.attach("vd0")
    assert handle.cache_attachment is not None
    assert handle.cache_attachment.tenant == "acme"
    assert shared.attachments() == [handle.cache_attachment]
    handle.detach()
    assert shared.attachments() == []


def test_cache_budget_set_on_attach_and_repartition_persists():
    store, fleet = make_fleet(shared_cache=SharedObjectCache(capacity=4 * MiB))
    fleet.create("vd0", 4 * MiB, tenant="acme", cache_budget=1 * MiB)
    fleet.attach("vd0")
    assert fleet.shared.tenant_budget("acme") == 1 * MiB
    fleet.set_cache_budget("acme", 2 * MiB)
    assert fleet.shared.tenant_budget("acme") == 2 * MiB
    # the new partition survives a restart via the manifest
    fleet2 = FleetManager(store, config=small_config())
    assert fleet2.record("vd0").cache_budget == 2 * MiB


def test_set_cache_budget_without_shared_cache_raises():
    _, fleet = make_fleet()
    with pytest.raises(FleetError):
        fleet.set_cache_budget("acme", 1 * MiB)


# -- QoS wiring ----------------------------------------------------------------


def test_attach_wires_core_admission_and_charges_tenant():
    clock = [0.0]
    _, fleet = make_fleet(clock=lambda: clock[0])
    fleet.create(
        "vd0", 4 * MiB, tenant="acme", limits=QoSLimits(iops=10.0, burst_ops=2)
    )
    handle = fleet.attach("vd0")
    assert handle.volume.qos is not None
    for i in range(8):  # burst of 2, then debt
        handle.volume.write(i * 4096, b"A" * 4096)
    assert fleet.obs.value("fleet.acme.admitted") >= 1
    assert fleet.obs.value("fleet.acme.throttled") >= 1
    assert fleet.obs.value("fleet.acme.bytes_admitted") == 8 * 4096


def test_unlimited_tenant_is_never_throttled():
    _, fleet = make_fleet()
    fleet.create("vd0", 4 * MiB, tenant="free")
    handle = fleet.attach("vd0")
    for i in range(16):
        handle.volume.write(i * 4096, b"A" * 4096)
    handle.volume.read(0, 4096)
    assert fleet.obs.value("fleet.free.throttled") == 0
    assert fleet.obs.value("fleet.free.admitted") == 17


def test_fleet_metrics_gauges_track_registry():
    _, fleet = make_fleet()
    fleet.create("vd0", 4 * MiB, tenant="a")
    fleet.create("vd1", 4 * MiB, tenant="b")
    fleet.attach("vd0")
    assert fleet.obs.value("fleet.vdisks") == 2
    assert fleet.obs.value("fleet.attached") == 1
    fleet.detach("vd0")
    assert fleet.obs.value("fleet.attached") == 0


# -- recovery sweep ------------------------------------------------------------


def test_recover_sweep_reattaches_every_registered_vdisk():
    store, fleet = make_fleet()
    for i in range(3):
        fleet.create(f"vd{i}", 4 * MiB, tenant=f"t{i}")
        handle = fleet.attach(f"vd{i}")
        handle.volume.write(0, bytes([i + 1]) * 4096)
    fleet.close()

    obs = Registry()
    fleet2 = FleetManager(store, config=small_config(), obs=obs)
    report = fleet2.recover()
    assert sorted(report) == ["vd0", "vd1", "vd2"]
    for i in range(3):
        entry = report[f"vd{i}"]
        assert entry["tenant"] == f"t{i}"
        assert entry["objects"] > 0
        assert fleet2.attached(f"vd{i}").volume.read(0, 4096) == bytes([i + 1]) * 4096
    assert obs.value("fleet.recovery_sweeps") == 1
    assert obs.value("fleet.recovered_vdisks") == 3


def test_crash_mid_checkpoint_recovers_fleet_prefix_consistent():
    """Kill the host while a fleet-wide checkpoint's PUTs are in flight;
    the recovery sweep must bring back every vdisk as a prefix-consistent
    image of its write history (§3.3 per volume, fleet-wide)."""
    inner = InMemoryObjectStore()
    store = UnsettledObjectStore(inner)
    fleet = FleetManager(store, config=small_config())
    recorders = {}
    for i in range(3):
        fleet.create(f"vd{i}", 16 * MiB, tenant=f"t{i}")
    store.settle_all()  # creation is durable

    for i in range(3):
        handle = fleet.attach(f"vd{i}")
        vol = handle.volume
        recorders[f"vd{i}"] = HistoryRecorder(vol.write, vol.flush)
    store.settle_all()  # attach-time recovery churn is durable

    # a first durable round: everything written, flushed, and settled
    for name, rec in sorted(recorders.items()):
        for j in range(32):
            rec.write(j * 4096, 4096)
        rec.barrier()
    store.settle_all()

    # second round + fleet checkpoint, then crash with PUTs still in
    # flight: some volumes' batches land, others vanish mid-air
    for name, rec in sorted(recorders.items()):
        for j in range(32, 48):
            rec.write(j * 4096, 4096)
    fleet.checkpoint()
    handles = store.pending_handles()
    assert handles, "checkpoint must have PUTs in flight"
    for handle in handles[: len(handles) // 2]:  # half settle, half lost
        store.settle(handle)
    store.crash()

    # restart from the settled backend only; local caches are gone
    fleet2 = FleetManager(inner, config=small_config())
    report = fleet2.recover()
    assert sorted(report) == ["vd0", "vd1", "vd2"]
    for name, rec in sorted(recorders.items()):
        vol = fleet2.attached(name).volume
        verdict = PrefixChecker(rec).check(vol.read)
        assert verdict.ok_prefix, (name, verdict.problems[:3])
        # the first durable round can never be rolled back
        assert verdict.cut >= 32, (name, verdict.cut)
