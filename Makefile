# Developer entry points.  CI (.github/workflows/ci.yml) runs the same
# targets; `make lint` is the full static gate, `make test` the tier-1 suite.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: all lint ruff mypy invariants test obs-smoke shard-smoke

all: lint test

lint: ruff mypy invariants

ruff:
	ruff check src tests benchmarks/obs_smoke.py benchmarks/shard_smoke.py

mypy:
	mypy

# the LSVD invariant checker (LSVD001-LSVD008); see DESIGN.md
invariants:
	$(PYTHON) -m repro.lint src/repro

test:
	$(PYTHON) -m pytest -x -q

# quick observability exercise of both stacks; emits BENCH_obs_*.json
# (CI uploads them as artifacts so the perf trajectory is reviewable)
obs-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/obs_smoke.py --out-dir bench-out

# shard-scaling sweep (1/2/4/8 shards); fails unless aggregate backend
# PUT throughput rises monotonically from 1 to 4 shards
shard-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/shard_smoke.py --out-dir bench-out
