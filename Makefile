# Developer entry points.  CI (.github/workflows/ci.yml) runs the same
# targets; `make lint` is the full static gate, `make test` the tier-1 suite.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: all lint ruff mypy invariants test

all: lint test

lint: ruff mypy invariants

ruff:
	ruff check src tests

mypy:
	mypy

# the LSVD invariant checker (LSVD001-LSVD006); see DESIGN.md
invariants:
	$(PYTHON) -m repro.lint src/repro

test:
	$(PYTHON) -m pytest -x -q
