# Developer entry points.  CI (.github/workflows/ci.yml) runs the same
# targets; `make lint` is the full static gate, `make test` the tier-1 suite.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: all lint ruff mypy invariants test obs-smoke shard-smoke perf-smoke pipeline-smoke lint-bench span-smoke fleet-smoke wa-smoke bench-diff

all: lint test

lint: ruff mypy invariants

ruff:
	ruff check src tests benchmarks/obs_smoke.py benchmarks/shard_smoke.py benchmarks/perf_smoke.py benchmarks/pipeline_smoke.py benchmarks/lint_bench.py benchmarks/span_smoke.py benchmarks/fleet_smoke.py benchmarks/wa_smoke.py benchmarks/bench_diff.py

mypy:
	mypy

# the LSVD invariant checker (LSVD001-LSVD017); see DESIGN.md
invariants:
	$(PYTHON) -m repro.lint src/repro benchmarks examples

test:
	$(PYTHON) -m pytest -x -q

# quick observability exercise of both stacks; emits BENCH_obs.json with
# core/runtime sections (CI uploads it so the perf trajectory is reviewable)
obs-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/obs_smoke.py --out-dir bench-out

# shard-scaling sweep (1/2/4/8 shards); fails unless aggregate backend
# PUT throughput rises monotonically from 1 all the way to 8 shards
shard-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/shard_smoke.py --out-dir bench-out

# group commit vs the serial-barrier baseline across queue depths; fails
# unless group commit spends fewer device FLUSHes per committed barrier
# at no throughput cost, or the sweep blows its wall-clock budget
pipeline-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/pipeline_smoke.py --out-dir bench-out

# data-plane fast path: extent map (chunked vs seed flat baseline), volume
# random I/O, GC repack; fails unless the chunked map is >=10x the flat
# list on 100k-extent random update and the 1M-extent pass stays in budget
perf-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/perf_smoke.py --out-dir bench-out

# full-tree lint wall-clock gate; emits BENCH_lint.json (timings plus
# the JSON diagnostics document) and fails on a superlinear regression
lint-bench:
	mkdir -p bench-out
	$(PYTHON) benchmarks/lint_bench.py --out-dir bench-out

# span-tracing gates: critical-path attribution must be exactly additive
# on the virtual clock and the span-enabled hot loop within 10% of the
# recorder-disabled loop; emits BENCH_span.json (+ a flight-recorder
# debug bundle on failure)
span-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/span_smoke.py --out-dir bench-out

# multi-tenant fleet gates: >=8 tenants' aggregate IOPS must beat a lone
# tenant on the same rig, and a QoS-capped noisy neighbour must leave the
# victim's p99 within a bounded factor of solo; emits BENCH_fleet.json
fleet-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/fleet_smoke.py --out-dir bench-out

# temperature-aware placement gates: SepBIT + cost-benefit must cut GC
# write amplification vs the greedy single-stream baseline on zipfian and
# hotspot workloads at equal utilisation; emits BENCH_wa.json
wa-smoke:
	mkdir -p bench-out
	$(PYTHON) benchmarks/wa_smoke.py --out-dir bench-out

# compare fresh bench-out/BENCH_*.json against the committed baselines
# (benchmarks/baselines/); deterministic virtual-clock figures are gated,
# wall-clock figures are informational
bench-diff:
	$(PYTHON) benchmarks/bench_diff.py
